//! Experiment E1 — Fig. 3 (left): single-socket and single-node
//! performance of the standard Jacobi vs pipelined temporal blocking
//! (barrier, relaxed d_u=1, relaxed d_u=4, relaxed T=1), with the §1.4
//! model predictions for T=1 and T=2.
//!
//! `--mode host` (default): measure on this machine — "socket" = one team
//! on one cache group, "node" = one team per cache group.
//! `--mode nehalem`: analytic series with the paper's machine parameters.
//! `--size N --sweeps S` override the problem.

use tb_bench::{best_of, problem, row, Args};
use tb_grid::GridPair;
use tb_model::{pipeline_speedup, roofline, MachineParams};
use tb_stencil::config::GridScheme;
use tb_stencil::kernel::StoreMode;
use tb_stencil::{baseline, pipeline, PipelineConfig, SyncMode};
use tb_topology::{Machine, TeamLayout};

fn main() {
    let args = Args::parse();
    match args.mode() {
        "nehalem" => nehalem(),
        _ => host(&args),
    }
}

/// Analytic reproduction with the paper's parameters: what the models say
/// the figure should look like (measured values in the paper: standard
/// ~1500/2900 MLUP/s socket/node, pipelined up to ~50-60% faster).
fn nehalem() {
    let m = MachineParams::nehalem_ep();
    let p0 = roofline::jacobi_roofline_default(&m) / 1e6;
    println!("Fig. 3 (left) — analytic series, Nehalem EP parameters\n");
    row("series", &["socket MLUP/s".into(), "node MLUP/s".into()]);
    row(
        "standard Jacobi (Eq. 2 roofline)",
        &[format!("{p0:.0}"), format!("{:.0}", 2.0 * p0)],
    );
    for t_updates in [1usize, 2, 4] {
        let s = pipeline_speedup(&m, m.cores_per_socket, t_updates);
        row(
            &format!("pipelined model T={t_updates} (Eq. 5)"),
            &[format!("{:.0}", p0 * s), format!("{:.0}", 2.0 * p0 * s)],
        );
    }
    println!(
        "\npaper: model matches measurement at T=1 (speedup {:.2}); at larger T\n\
         execution decouples from memory bandwidth and the model overpredicts\n\
         (measured optimum T=2, +50-60% over standard).",
        pipeline_speedup(&m, m.cores_per_socket, 1)
    );
}

fn host(args: &Args) {
    let machine = tb_topology::detect::detect();
    let edge = args.get_usize("--size", tb_bench::default_edge());
    let sweeps = args.get_usize("--sweeps", 12);
    let reps = args.get_usize("--reps", 3);
    println!(
        "Fig. 3 (left) — host mode on {} ({} CPUs), {edge}^3 grid, {sweeps} sweeps, best of {reps}\n",
        machine.name,
        machine.num_cpus()
    );

    // Calibrate the model for this host.
    let params = tb_membench::calibrate_host(&machine, tb_membench::CalibrationProfile::quick());

    let socket_cpus = machine.cores_per_socket().max(1);
    let groups = machine.cache_groups().len();
    row("series", &["socket MLUP/s".into(), "node MLUP/s".into()]);

    // Standard Jacobi baseline: socket = one cache group's cores, node =
    // all cores. Both store modes are reported: the paper's testbed
    // favors non-temporal stores, but virtualized hosts often execute
    // them pathologically slowly.
    let std_rate = |threads: usize, store: StoreMode| {
        best_of(reps, || {
            let mut pair = GridPair::from_initial(problem(edge, 42));
            baseline::par_sweeps(&mut pair, sweeps, threads, store, None)
        })
    };
    for (label, store) in [
        ("standard Jacobi (NT stores)", StoreMode::Streaming),
        ("standard Jacobi (plain stores)", StoreMode::Normal),
    ] {
        let socket_std = std_rate(socket_cpus, store);
        let node_std = std_rate(machine.num_cpus().max(1), store);
        row(
            label,
            &[
                tb_bench::fmt_mlups(&socket_std),
                tb_bench::fmt_mlups(&node_std),
            ],
        );
    }

    // Pipelined variants.
    let variants: Vec<(&str, SyncMode, usize)> = vec![
        ("pipeline w/ barrier (T=2)", SyncMode::Barrier, 2),
        (
            "pipeline relaxed d_u=1 (T=2)",
            SyncMode::Relaxed {
                dl: 1,
                du: 1,
                dt: 0,
            },
            2,
        ),
        (
            "pipeline relaxed d_u=4 (T=2)",
            SyncMode::Relaxed {
                dl: 1,
                du: 4,
                dt: 0,
            },
            2,
        ),
        (
            "pipeline relaxed T=1",
            SyncMode::Relaxed {
                dl: 1,
                du: 4,
                dt: 0,
            },
            1,
        ),
    ];
    for (label, sync, upd) in variants {
        let run = |n_teams: usize, mach: &Machine| {
            let cfg = PipelineConfig {
                team_size: socket_cpus,
                n_teams,
                updates_per_thread: upd,
                block: [edge.min(120), 20, 20],
                sync,
                scheme: GridScheme::TwoGrid,
                layout: Some(TeamLayout::new(mach, socket_cpus, n_teams)),
                audit: false,
            };
            best_of(reps, || {
                let mut pair = GridPair::from_initial(problem(edge, 42));
                pipeline::run(&mut pair, &cfg, sweeps).expect("valid config")
            })
        };
        let socket = run(1, &machine);
        // "Node" = one team per cache group; machines with a single group
        // still run two (time-shared) teams so the series exists.
        let node = run(groups.max(2), &machine);
        row(
            label,
            &[tb_bench::fmt_mlups(&socket), tb_bench::fmt_mlups(&node)],
        );
    }

    // Model predictions for this host.
    let p0 = roofline::jacobi_roofline_default(&params) / 1e6;
    for t_updates in [1usize, 2] {
        let s = pipeline_speedup(&params, socket_cpus, t_updates);
        row(
            &format!("model T={t_updates} (calibrated)"),
            &[format!("{:.1}", p0 * s), format!("{:.1}", 2.0 * p0 * s)],
        );
    }
    println!(
        "\ncalibration: Ms,1={:.1} GB/s Ms={:.1} GB/s Mc={:.1} GB/s -> max speedup {:.2}",
        params.ms1 / 1e9,
        params.ms / 1e9,
        params.mc / 1e9,
        params.max_speedup()
    );
}
