//! Experiment E9 — §1.5 in-text: team delay sweep.
//!
//! The delay d_t forces extra distance between the teams of the pipeline;
//! the paper measured only "a very slight impact on this architecture
//! (about 3% improvement for d_t = 8)".

use tb_bench::{best_of, problem, Args};
use tb_grid::GridPair;
use tb_stencil::config::GridScheme;
use tb_stencil::{pipeline, PipelineConfig, SyncMode};
use tb_topology::TeamLayout;

fn main() {
    let args = Args::parse();
    let machine = tb_topology::detect::detect();
    let edge = args.get_usize("--size", tb_bench::default_edge());
    let sweeps = args.get_usize("--sweeps", 12);
    let reps = args.get_usize("--reps", 3);
    let t = machine.cores_per_socket().max(1);
    let teams = machine.cache_groups().len().max(2);

    println!("ablation: team delay d_t ({edge}^3, {teams} teams of {t})\n");
    println!("{:>6} {:>12}", "d_t", "MLUP/s");
    for dt in [0u64, 2, 4, 8, 16] {
        let cfg = PipelineConfig {
            team_size: t,
            n_teams: teams,
            updates_per_thread: 1,
            block: [edge.min(120), 20, 20],
            sync: SyncMode::Relaxed { dl: 1, du: 4, dt },
            scheme: GridScheme::TwoGrid,
            layout: Some(TeamLayout::new(&machine, t, teams)),
            audit: false,
        };
        if cfg.validate(tb_grid::Dims3::cube(edge)).is_err() {
            continue;
        }
        let s = best_of(reps, || {
            let mut pair = GridPair::from_initial(problem(edge, 42));
            pipeline::run(&mut pair, &cfg, sweeps).unwrap()
        });
        println!("{dt:>6} {:>12.1}", s.mlups());
    }
    println!("\npaper: ~3% improvement at d_t = 8 on Nehalem; not studied further.");
}
