//! Experiment E7 — §1.5 in-text: sweep of T (updates per thread and
//! block). The paper finds T=2 optimal with "some very minor improvement
//! at T=4"; T=1 underuses the cache, larger T shrinks the usable block
//! set and adds pipeline fill overhead.

use tb_bench::{best_of, problem, Args};
use tb_grid::GridPair;
use tb_stencil::config::GridScheme;
use tb_stencil::{pipeline, PipelineConfig, SyncMode};
use tb_topology::TeamLayout;

fn main() {
    let args = Args::parse();
    let machine = tb_topology::detect::detect();
    let edge = args.get_usize("--size", tb_bench::default_edge());
    let sweeps = args.get_usize("--sweeps", 16);
    let reps = args.get_usize("--reps", 3);
    let t = machine.cores_per_socket().max(1);

    println!("ablation: updates per thread T ({edge}^3, team of {t}, {sweeps} sweeps)\n");
    println!("{:>4} {:>8} {:>12}", "T", "depth", "MLUP/s");
    for updates in [1usize, 2, 4, 8] {
        let cfg = PipelineConfig {
            team_size: t,
            n_teams: 1,
            updates_per_thread: updates,
            block: [edge.min(120), 20, 20],
            sync: SyncMode::relaxed_default(),
            scheme: GridScheme::TwoGrid,
            layout: Some(TeamLayout::new(&machine, t, 1)),
            audit: false,
        };
        if cfg.validate(tb_grid::Dims3::cube(edge)).is_err() {
            println!("{updates:>4} {:>8} {:>12}", cfg.stages(), "skipped");
            continue;
        }
        let s = best_of(reps, || {
            let mut pair = GridPair::from_initial(problem(edge, 42));
            pipeline::run(&mut pair, &cfg, sweeps).unwrap()
        });
        println!("{updates:>4} {:>8} {:>12.1}", cfg.stages(), s.mlups());
    }
    println!("\npaper: optimum usually T=2, very minor improvement at T=4.");
}
