//! Synchronization-overhead analysis (supporting the paper's claim that
//! "a barrier may cost hundreds if not thousands of cycles" and that
//! relaxed synchronization pays off).
//!
//! A synthetic pipeline processes `blocks` virtual blocks whose "work" is
//! a calibrated spin of `--work-us` microseconds; we report wall time and
//! per-thread wait fraction for the barrier scheme versus relaxed
//! (d_u = 1 lock-step and d_u = 4 loose), isolating the synchronization
//! cost from any memory effects.
//!
//! The second section measures the *thread management* overhead the
//! persistent [`tb_runtime::Runtime`] retires: per-sweep cost of
//! spawn-a-team-per-sweep (`std::thread::scope`, what every executor did
//! before the runtime existed) versus dispatching the same sweep to a
//! persistent team, across team sizes — and the crossover sweep count
//! after which building a runtime has paid for itself. Emits
//! `BENCH_runtime.json`.

use std::io::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use tb_bench::Args;
use tb_runtime::Runtime;
use tb_sync::{PipelineSync, SpinBarrier};

fn spin_for(d: Duration) {
    let t0 = Instant::now();
    while t0.elapsed() < d {
        std::hint::spin_loop();
    }
}

fn main() {
    let args = Args::parse();
    let threads = args.get_usize(
        "--threads",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2),
    );
    let blocks = args.get_usize("--blocks", 400) as u64;
    let work = Duration::from_micros(args.get_usize("--work-us", 20) as u64);

    println!(
        "synthetic pipeline: {threads} threads, {blocks} blocks, {}us work per block\n",
        work.as_micros()
    );
    println!("{:<26} {:>12} {:>14}", "scheme", "total [ms]", "wait share");

    // Barrier scheme: lock-step rounds like the executor's barrier mode.
    {
        let barrier = SpinBarrier::new(threads);
        let wait_ns = AtomicU64::new(0);
        let t0 = Instant::now();
        std::thread::scope(|s| {
            for tid in 0..threads {
                let barrier = &barrier;
                let wait_ns = &wait_ns;
                s.spawn(move || {
                    let rounds = blocks as usize + threads - 1;
                    for r in 0..rounds {
                        if let Some(j) = r.checked_sub(tid) {
                            if (j as u64) < blocks {
                                spin_for(work);
                            }
                        }
                        let w = Instant::now();
                        barrier.wait();
                        wait_ns.fetch_add(w.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    }
                });
            }
        });
        let total = t0.elapsed();
        let waited = Duration::from_nanos(wait_ns.load(Ordering::Relaxed) / threads as u64);
        println!(
            "{:<26} {:>12.2} {:>13.1}%",
            "global barrier",
            total.as_secs_f64() * 1e3,
            100.0 * waited.as_secs_f64() / total.as_secs_f64()
        );
    }

    // Relaxed schemes.
    for (label, du) in [
        ("relaxed d_u=1 (lockstep)", 1u64),
        ("relaxed d_u=4", 4),
        ("relaxed d_u=16", 16),
    ] {
        let psync = PipelineSync::new(threads, threads, 1, du, 0);
        let wait_ns = AtomicU64::new(0);
        let t0 = Instant::now();
        std::thread::scope(|s| {
            for tid in 0..threads {
                let psync = &psync;
                let wait_ns = &wait_ns;
                s.spawn(move || {
                    for _ in 0..blocks {
                        let w = Instant::now();
                        psync.wait_for_turn(tid, blocks);
                        wait_ns.fetch_add(w.elapsed().as_nanos() as u64, Ordering::Relaxed);
                        spin_for(work);
                        psync.complete_block(tid);
                    }
                });
            }
        });
        let total = t0.elapsed();
        let waited = Duration::from_nanos(wait_ns.load(Ordering::Relaxed) / threads as u64);
        println!(
            "{:<26} {:>12.2} {:>13.1}%",
            label,
            total.as_secs_f64() * 1e3,
            100.0 * waited.as_secs_f64() / total.as_secs_f64()
        );
    }
    println!(
        "\nnote: with oversubscribed threads the barrier scheme degrades most —\n\
         the paper expects relaxed sync to become vital on many-core designs."
    );

    dispatch_overhead(&args);
}

/// One row of the spawn-vs-persistent measurement.
struct DispatchRow {
    team: usize,
    spawn_us: f64,
    persistent_us: f64,
    setup_us: f64,
    /// Sweeps after which `setup + n·persistent < n·spawn`; `None` when
    /// persistent dispatch did not beat spawning (noisy host).
    crossover_sweeps: Option<u64>,
}

/// Measure spawn-per-sweep vs persistent-dispatch cost per team size and
/// write `BENCH_runtime.json`.
fn dispatch_overhead(args: &Args) {
    let smoke = args.has("--smoke");
    let sweeps = args.get_usize("--dispatch-sweeps", if smoke { 60 } else { 300 });
    let work = Duration::from_micros(args.get_usize("--dispatch-work-us", 5) as u64);
    let teams: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 4, 8] };

    println!(
        "\nthread management: spawn-per-sweep vs persistent dispatch\n\
         ({sweeps} sweeps of {}us work per worker)\n",
        work.as_micros()
    );
    println!(
        "{:>5} {:>16} {:>16} {:>12} {:>12}",
        "team", "spawn [us/sweep]", "persist [us/sweep]", "setup [us]", "crossover"
    );

    let mut rows = Vec::new();
    for &team in teams {
        // Runtime setup: thread spawn + the first dispatch (which eats
        // the workers' cold-start) — the one-time cost a shared runtime
        // amortizes.
        let t0 = Instant::now();
        let rt = Runtime::with_threads(team);
        rt.run(team, &|_| {});
        let setup_us = t0.elapsed().as_secs_f64() * 1e6;

        // Persistent dispatch: one broadcast per sweep.
        let t0 = Instant::now();
        for _ in 0..sweeps {
            rt.run(team, &|_| spin_for(work));
        }
        let persistent_us = t0.elapsed().as_secs_f64() * 1e6 / sweeps as f64;

        // Spawn-per-sweep: what the executors did before tb-runtime.
        let t0 = Instant::now();
        for _ in 0..sweeps {
            std::thread::scope(|s| {
                for _ in 0..team {
                    s.spawn(|| spin_for(work));
                }
            });
        }
        let spawn_us = t0.elapsed().as_secs_f64() * 1e6 / sweeps as f64;

        let crossover_sweeps = (spawn_us > persistent_us)
            .then(|| (setup_us / (spawn_us - persistent_us)).ceil() as u64);
        println!(
            "{team:>5} {spawn_us:>16.1} {persistent_us:>16.1} {setup_us:>12.1} {:>12}",
            crossover_sweeps.map_or("-".into(), |c| c.to_string())
        );
        rows.push(DispatchRow {
            team,
            spawn_us,
            persistent_us,
            setup_us,
            crossover_sweeps,
        });
    }

    let json_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"team\": {}, \"spawn_us_per_sweep\": {:.3}, \
                 \"persistent_us_per_sweep\": {:.3}, \"setup_us\": {:.3}, \
                 \"crossover_sweeps\": {}}}",
                r.team,
                r.spawn_us,
                r.persistent_us,
                r.setup_us,
                r.crossover_sweeps
                    .map_or("null".into(), |c: u64| c.to_string())
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"runtime_dispatch\",\n  \"work_us\": {},\n  \"sweeps\": {},\n  \
         \"rows\": [\n{}\n  ]\n}}\n",
        work.as_micros(),
        sweeps,
        json_rows.join(",\n")
    );
    let path = args.get("--out").unwrap_or("BENCH_runtime.json");
    std::fs::File::create(path)
        .and_then(|mut f| f.write_all(json.as_bytes()))
        .expect("write BENCH_runtime.json");
    println!("\nwrote {path}");

    let wins = rows.iter().filter(|r| r.persistent_us < r.spawn_us).count();
    println!(
        "persistent dispatch beat spawn-per-sweep for {wins}/{} team sizes",
        rows.len()
    );
}
