//! Synchronization-overhead analysis (supporting the paper's claim that
//! "a barrier may cost hundreds if not thousands of cycles" and that
//! relaxed synchronization pays off).
//!
//! A synthetic pipeline processes `blocks` virtual blocks whose "work" is
//! a calibrated spin of `--work-us` microseconds; we report wall time and
//! per-thread wait fraction for the barrier scheme versus relaxed
//! (d_u = 1 lock-step and d_u = 4 loose), isolating the synchronization
//! cost from any memory effects.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use tb_bench::Args;
use tb_sync::{PipelineSync, SpinBarrier};

fn spin_for(d: Duration) {
    let t0 = Instant::now();
    while t0.elapsed() < d {
        std::hint::spin_loop();
    }
}

fn main() {
    let args = Args::parse();
    let threads = args.get_usize(
        "--threads",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2),
    );
    let blocks = args.get_usize("--blocks", 400) as u64;
    let work = Duration::from_micros(args.get_usize("--work-us", 20) as u64);

    println!(
        "synthetic pipeline: {threads} threads, {blocks} blocks, {}us work per block\n",
        work.as_micros()
    );
    println!("{:<26} {:>12} {:>14}", "scheme", "total [ms]", "wait share");

    // Barrier scheme: lock-step rounds like the executor's barrier mode.
    {
        let barrier = SpinBarrier::new(threads);
        let wait_ns = AtomicU64::new(0);
        let t0 = Instant::now();
        std::thread::scope(|s| {
            for tid in 0..threads {
                let barrier = &barrier;
                let wait_ns = &wait_ns;
                s.spawn(move || {
                    let rounds = blocks as usize + threads - 1;
                    for r in 0..rounds {
                        if let Some(j) = r.checked_sub(tid) {
                            if (j as u64) < blocks {
                                spin_for(work);
                            }
                        }
                        let w = Instant::now();
                        barrier.wait();
                        wait_ns.fetch_add(w.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    }
                });
            }
        });
        let total = t0.elapsed();
        let waited = Duration::from_nanos(wait_ns.load(Ordering::Relaxed) / threads as u64);
        println!(
            "{:<26} {:>12.2} {:>13.1}%",
            "global barrier",
            total.as_secs_f64() * 1e3,
            100.0 * waited.as_secs_f64() / total.as_secs_f64()
        );
    }

    // Relaxed schemes.
    for (label, du) in [
        ("relaxed d_u=1 (lockstep)", 1u64),
        ("relaxed d_u=4", 4),
        ("relaxed d_u=16", 16),
    ] {
        let psync = PipelineSync::new(threads, threads, 1, du, 0);
        let wait_ns = AtomicU64::new(0);
        let t0 = Instant::now();
        std::thread::scope(|s| {
            for tid in 0..threads {
                let psync = &psync;
                let wait_ns = &wait_ns;
                s.spawn(move || {
                    for _ in 0..blocks {
                        let w = Instant::now();
                        psync.wait_for_turn(tid, blocks);
                        wait_ns.fetch_add(w.elapsed().as_nanos() as u64, Ordering::Relaxed);
                        spin_for(work);
                        psync.complete_block(tid);
                    }
                });
            }
        });
        let total = t0.elapsed();
        let waited = Duration::from_nanos(wait_ns.load(Ordering::Relaxed) / threads as u64);
        println!(
            "{:<26} {:>12.2} {:>13.1}%",
            label,
            total.as_secs_f64() * 1e3,
            100.0 * waited.as_secs_f64() / total.as_secs_f64()
        );
    }
    println!(
        "\nnote: with oversubscribed threads the barrier scheme degrades most —\n\
         the paper expects relaxed sync to become vital on many-core designs."
    );
}
