//! Experiment: communication/computation overlap (§2.3) — Sync vs
//! Overlapped vs OverlappedCommThread across the operator matrix under
//! the paper's QDR InfiniBand virtual network.
//!
//! Every cell executes the real decomposition + nonblocking exchange +
//! solver protocol with in-process ranks, is verified bitwise against
//! the operator's serial oracle, and the three modes are verified
//! bitwise against each other. The virtual clock charges compute at a
//! modeled node rate, so the simulated network can hide transfers
//! behind the interior trapezoid; the **hiding ratio**
//! `1 − exposed_overlapped / exposed_sync` measures how much of the
//! synchronous exchange cost the overlap removed — the quantity behind
//! Fig. 6's communication-bound regime.
//!
//! ```sh
//! cargo run --release -p tb-bench --bin overlap_sweep
//! cargo run --release -p tb-bench --bin overlap_sweep -- --smoke
//! ```

use std::io::Write as _;

use tb_bench::Args;
use tb_dist::{solver, Decomposition, DistSolver, ExchangeMode, LocalExec};
use tb_grid::{init, norm, Dims3, Grid3, Region3};
use tb_net::{CartComm, SimNet, Universe};
use tb_stencil::{Avg27, Jacobi6, Jacobi7, StencilOp, VarCoeff7};

const MODES: [ExchangeMode; 3] = [
    ExchangeMode::Sync,
    ExchangeMode::Overlapped,
    ExchangeMode::OverlappedCommThread,
];

fn mode_name(mode: ExchangeMode) -> &'static str {
    match mode {
        ExchangeMode::Sync => "sync",
        ExchangeMode::Overlapped => "overlapped",
        ExchangeMode::OverlappedCommThread => "overlapped-ct",
    }
}

struct Cell {
    op: &'static str,
    pgrid: [usize; 3],
    /// Modeled compute rate of this row (LUP/s).
    lups: f64,
    mode: &'static str,
    /// Mean exposed communication seconds per rank (virtual).
    exposed_comm: f64,
    /// Virtual completion time (max over ranks).
    virtual_time: f64,
    halo_bytes: u64,
    gather_bytes: u64,
    verified: bool,
    /// `1 − exposed / exposed_sync`, for the overlapped modes.
    hiding: Option<f64>,
}

struct ModeOutcome {
    grid: Grid3<f64>,
    exposed_comm: f64,
    virtual_time: f64,
    halo_bytes: u64,
    gather_bytes: u64,
}

#[allow(clippy::too_many_arguments)]
fn run_mode<Op: StencilOp<f64> + Clone + Sync>(
    op: &Op,
    global: &Grid3<f64>,
    dec: &Decomposition,
    pgrid: [usize; 3],
    mode: ExchangeMode,
    sweeps: usize,
    lups: f64,
    net: SimNet,
) -> ModeOutcome {
    let per_rank = Universe::run(dec.ranks(), Some(net), move |comm| {
        let mut cart = CartComm::new(comm, pgrid);
        let mut s =
            DistSolver::from_global_op(dec, cart.coords(), global, LocalExec::Seq, op.clone())
                .expect("valid decomposition")
                .with_exchange_mode(mode)
                .with_virtual_compute(lups);
        s.run_sweeps(&mut cart, sweeps);
        let exposed = cart.comm.comm_seconds();
        let time = cart.comm.time();
        let grid = s.gather_global(&mut cart, dec, global);
        (grid, exposed, time, s.halo_bytes_sent, s.gather_bytes_sent)
    });
    let ranks = per_rank.len() as f64;
    let mut grid = None;
    let mut exposed_comm = 0.0;
    let mut virtual_time: f64 = 0.0;
    let (mut halo_bytes, mut gather_bytes) = (0u64, 0u64);
    for (g, exposed, time, halo, gather) in per_rank {
        if let Some(g) = g {
            grid = Some(g);
        }
        exposed_comm += exposed / ranks;
        virtual_time = virtual_time.max(time);
        halo_bytes += halo;
        gather_bytes += gather;
    }
    ModeOutcome {
        grid: grid.expect("rank 0 gathers"),
        exposed_comm,
        virtual_time,
        halo_bytes,
        gather_bytes,
    }
}

#[allow(clippy::too_many_arguments)]
fn sweep_op<Op: StencilOp<f64> + Clone + Sync>(
    op: &Op,
    pgrid: [usize; 3],
    edge: usize,
    h: usize,
    sweeps: usize,
    lups: f64,
    rows: &mut Vec<Cell>,
) {
    let dims = Dims3::cube(edge);
    let dec = Decomposition::new(dims, pgrid, h);
    let global: Grid3<f64> = init::random(dims, 0x0E7A);
    let oracle = solver::serial_reference_op(op, &global, sweeps);
    let net = SimNet::qdr_infiniband();

    let mut sync_exposed = None;
    let mut sync_grid: Option<Grid3<f64>> = None;
    for mode in MODES {
        let out = run_mode(op, &global, &dec, pgrid, mode, sweeps, lups, net);
        let interior = Region3::interior_of(dims);
        let mut verified = norm::first_mismatch(&oracle, &out.grid, &interior).is_none();
        // Cross-mode identity: every overlapped gather must equal Sync's.
        if let Some(sg) = &sync_grid {
            verified &= norm::first_mismatch(sg, &out.grid, &interior).is_none();
        } else {
            sync_grid = Some(out.grid.clone());
        }
        let hiding = match (mode, sync_exposed) {
            (ExchangeMode::Sync, _) => {
                sync_exposed = Some(out.exposed_comm);
                None
            }
            // Clamp only above: a negative ratio (overlap exposing MORE
            // than sync) is a regression that must stay visible.
            (_, Some(sync)) if sync > 0.0 => Some((1.0 - out.exposed_comm / sync).min(1.0)),
            _ => None,
        };
        rows.push(Cell {
            op: op.name(),
            pgrid,
            lups,
            mode: mode_name(mode),
            exposed_comm: out.exposed_comm,
            virtual_time: out.virtual_time,
            halo_bytes: out.halo_bytes,
            gather_bytes: out.gather_bytes,
            verified,
            hiding,
        });
    }
}

fn main() {
    let args = Args::parse();
    let smoke = args.has("--smoke");
    let edge = args.get_usize("--size", if smoke { 12 } else { 24 });
    let sweeps = args.get_usize("--sweeps", if smoke { 4 } else { 8 });
    let h = args.get_usize("--halo", 2);
    // Modeled per-rank compute rate: slow enough that an exchange fits
    // under one cycle's interior compute on the default geometry.
    let lups = 1e8;
    let pgrids: &[[usize; 3]] = if smoke {
        &[[2, 1, 1]]
    } else {
        &[[2, 1, 1], [2, 2, 1]]
    };

    println!(
        "overlap sweep — {edge}^3, h = {h}, {sweeps} sweeps, QDR-IB virtual network, \
         {:.0} MLUP/s modeled compute\n",
        lups / 1e6
    );

    let mut rows = Vec::new();
    let dims = Dims3::cube(edge);
    for &pgrid in pgrids {
        sweep_op(&Jacobi6, pgrid, edge, h, sweeps, lups, &mut rows);
        sweep_op(&Jacobi7::heat(0.1), pgrid, edge, h, sweeps, lups, &mut rows);
        sweep_op(
            &VarCoeff7::banded(dims),
            pgrid,
            edge,
            h,
            sweeps,
            lups,
            &mut rows,
        );
        sweep_op(&Avg27, pgrid, edge, h, sweeps, lups, &mut rows);
    }
    if !smoke {
        // The limit regime: a node fast enough that the interior update
        // no longer covers the wire time — overlap hides only part of
        // the exchange (module docs: "when overlap cannot hide").
        sweep_op(&Jacobi6, [2, 2, 1], edge, h, sweeps, 2e9, &mut rows);
    }

    println!(
        "{:<11} {:<10} {:>8} {:<14} {:>12} {:>12} {:>9} {:>8} {:>9}",
        "op",
        "ranks",
        "MLUP/s",
        "mode",
        "exposed[us]",
        "vtime[us]",
        "halo[KB]",
        "hiding",
        "verified"
    );
    for r in &rows {
        println!(
            "{:<11} {:<10} {:>8.0} {:<14} {:>12.2} {:>12.2} {:>9.1} {:>8} {:>9}",
            r.op,
            format!("{:?}", r.pgrid),
            r.lups / 1e6,
            r.mode,
            r.exposed_comm * 1e6,
            r.virtual_time * 1e6,
            r.halo_bytes as f64 / 1e3,
            r.hiding.map_or("-".into(), |x| format!("{x:.2}")),
            r.verified
        );
    }

    let all_verified = rows.iter().all(|r| r.verified);
    let best_hiding = rows
        .iter()
        .filter_map(|r| r.hiding)
        .fold(f64::NEG_INFINITY, f64::max);

    let json = format!(
        "{{\n  \"edge\": {edge},\n  \"halo\": {h},\n  \"sweeps\": {sweeps},\n  \
         \"model_lups\": {lups:.0},\n  \"network\": \"qdr_infiniband\",\n  \
         \"best_hiding_ratio\": {best_hiding:.4},\n  \"results\": [\n{}\n  ]\n}}\n",
        rows.iter()
            .map(|r| {
                format!(
                    "    {{\"op\": \"{}\", \"pgrid\": {:?}, \"model_lups\": {:.0}, \
                     \"mode\": \"{}\", \
                     \"exposed_comm_s\": {:.3e}, \"virtual_time_s\": {:.3e}, \
                     \"halo_bytes\": {}, \"gather_bytes\": {}, \"hiding_ratio\": {}, \
                     \"verified\": {}}}",
                    r.op,
                    r.pgrid,
                    r.lups,
                    r.mode,
                    r.exposed_comm,
                    r.virtual_time,
                    r.halo_bytes,
                    r.gather_bytes,
                    r.hiding.map_or("null".into(), |x| format!("{x:.4}")),
                    r.verified
                )
            })
            .collect::<Vec<_>>()
            .join(",\n")
    );
    let path = args.get("--out").unwrap_or("BENCH_overlap.json");
    std::fs::File::create(path)
        .and_then(|mut f| f.write_all(json.as_bytes()))
        .expect("write BENCH_overlap.json");
    println!("\nwrote {path}");

    assert!(
        all_verified,
        "a run diverged from its serial oracle or from the sync-mode gather"
    );
    assert!(
        best_hiding > 0.0,
        "no configuration hid any communication (best hiding {best_hiding})"
    );
    println!(
        "all {} runs matched the serial oracle bitwise across modes; best hiding ratio {:.2}",
        rows.len(),
        best_hiding
    );
}
