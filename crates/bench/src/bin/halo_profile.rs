//! Experiment E10 — §2.2 profiling observations:
//!
//! * buffer copies (pack/unpack) cost about as much as the wire transfer
//!   — reproduced by timing `pack_region` against a full in-process
//!   exchange (which includes both ends' copies plus the channel),
//! * message aggregation: effective bandwidth of one h-layer message vs
//!   h single-layer messages.

use std::time::Instant;

use tb_bench::Args;
use tb_dist::halo::pack_region;
use tb_dist::{Decomposition, DistJacobi, LocalExec};
use tb_grid::{init, Dims3, Grid3, Region3};
use tb_model::NetworkParams;
use tb_net::{CartComm, Universe};

fn main() {
    let args = Args::parse();
    let edge = args.get_usize("--size", 96);
    let reps = args.get_usize("--reps", 20);

    // 1. Pack cost vs exchange cost on a 2-rank decomposition.
    let dims = Dims3::cube(edge);
    let dec = Decomposition::new(dims, [2, 1, 1], 4);
    let global: Grid3<f64> = init::random(dims, 3);

    // Pack-only timing (sender-side copy).
    let local = dec.local([0, 0, 0]);
    let face = Region3::new(
        [
            local.interior.hi[0] - 4,
            local.interior.lo[1],
            local.interior.lo[2],
        ],
        [
            local.interior.hi[0],
            local.interior.hi[1],
            local.interior.hi[2],
        ],
    );
    let mut g0: Grid3<f64> = Grid3::zeroed(local.dims);
    g0.fill_region(&Region3::whole(local.dims), 1.0);
    let t0 = Instant::now();
    let mut bytes = 0usize;
    for _ in 0..reps {
        bytes += pack_region(&g0, &face).len();
    }
    let pack_time = t0.elapsed().as_secs_f64() / reps as f64;
    let pack_bw = (bytes / reps) as f64 / pack_time;

    // Full exchange timing.
    let global_ref = &global;
    let times = Universe::run(2, None, move |comm| {
        let mut cart = CartComm::new(comm, [2, 1, 1]);
        let mut s =
            DistJacobi::from_global(&dec, cart.coords(), global_ref, LocalExec::Seq).unwrap();
        // Warm-up cycle, then timed cycles (exchange + updates).
        s.run_sweeps(&mut cart, 4);
        let t = Instant::now();
        for _ in 0..reps {
            s.run_sweeps(&mut cart, 4);
        }
        (t.elapsed().as_secs_f64() / reps as f64, s.halo_bytes_sent)
    });

    println!("halo profiling, {edge}^3 over 2 ranks, h = 4\n");
    println!(
        "pack_region: {:>10.1} MB/s ({:.1} us per 4-layer face)",
        pack_bw / 1e6,
        pack_time * 1e6
    );
    println!(
        "full cycle (exchange + 4 updates): {:.1} us; rank halo bytes sent: {}",
        times[0].0 * 1e6,
        times[0].1
    );
    println!(
        "\npaper §2.2: \"copying halo data from boundary cells to and from\n\
         intermediate message buffers causes about the same overhead as the\n\
         actual data transfer\" — in-process channels make the 'wire' a copy\n\
         too, so pack ≈ transfer holds trivially here; on a real fabric use\n\
         the model's copy_bandwidth parameter."
    );

    // 2. Message aggregation effect (model, paper parameters).
    let net = NetworkParams::qdr_infiniband();
    println!("\nmessage aggregation (QDR-IB model): one h-layer vs h 1-layer messages");
    println!(
        "{:>4} {:>10} {:>16} {:>16}",
        "L", "h", "aggregated [us]", "fragmented [us]"
    );
    for (l, h) in [(10usize, 8usize), (10, 16), (50, 8), (100, 8)] {
        let bytes_1 = l * l * 8;
        let agg = net.message_time(h * bytes_1) * 1e6;
        let frag = h as f64 * net.message_time(bytes_1) * 1e6;
        println!("{l:>4} {h:>10} {agg:>16.2} {frag:>16.2}");
    }
}
