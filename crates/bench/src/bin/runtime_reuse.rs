//! Multi-solve reuse smoke: many solves, every executor, one runtime.
//!
//! Exercises the repeated-solve scenario the persistent runtime exists
//! for: a single worker team executes a matrix of solves (parallel
//! baseline ± streaming stores, pipelined two-grid, compressed,
//! wavefront × two operators), each verified bitwise against its
//! sequential oracle, while the process thread count is held constant —
//! proof that no executor spawns (or leaks) threads per solve anymore.
//!
//! ```sh
//! cargo run --release -p tb-bench --bin runtime_reuse -- --rounds 5
//! ```

use tb_bench::{problem, Args};
use tb_grid::{norm, CompressedGrid, Grid3, GridPair, Region3};
use tb_runtime::Runtime;
use tb_stencil::config::GridScheme;
use tb_stencil::kernel::StoreMode;
use tb_stencil::{
    baseline, pipeline, wavefront, Avg27, Jacobi6, PipelineConfig, StencilOp, SyncMode,
};

/// Live thread count of this process (Linux); `None` elsewhere.
fn thread_count() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find(|l| l.starts_with("Threads:"))?
        .split_whitespace()
        .nth(1)?
        .parse()
        .ok()
}

fn cfg(scheme: GridScheme) -> PipelineConfig {
    PipelineConfig {
        team_size: 2,
        n_teams: 1,
        updates_per_thread: 1,
        block: [16, 8, 8],
        sync: SyncMode::relaxed_default(),
        scheme,
        layout: None,
        audit: false,
    }
}

fn solve_matrix<Op: StencilOp<f64>>(
    rt: &Runtime,
    op: &Op,
    initial: &Grid3<f64>,
    sweeps: usize,
) -> usize {
    let dims = initial.dims();
    let mut oracle = GridPair::from_initial(initial.clone());
    baseline::seq_sweeps_op(op, &mut oracle, sweeps);
    let want = oracle.current(sweeps);
    let mut solves = 0;

    let mut check = |name: &str, got: &Grid3<f64>| {
        assert!(
            norm::first_mismatch(want, got, &Region3::whole(dims)).is_none(),
            "{name} diverged from the sequential oracle for {}",
            op.name()
        );
        solves += 1;
    };

    for store in [StoreMode::Normal, StoreMode::Streaming] {
        let mut pair = GridPair::from_initial(initial.clone());
        baseline::par_sweeps_op_on(rt, op, &mut pair, sweeps, 2, store);
        check("parallel", pair.current(sweeps));
    }
    {
        let mut pair = GridPair::from_initial(initial.clone());
        pipeline::run_op_on(rt, op, &mut pair, &cfg(GridScheme::TwoGrid), sweeps).unwrap();
        check("pipelined", pair.current(sweeps));
    }
    {
        let c = cfg(GridScheme::Compressed);
        let mut cg = CompressedGrid::from_grid(initial, c.stages());
        pipeline::run_compressed_op_on(rt, op, &mut cg, &c, sweeps).unwrap();
        check("compressed", &cg.to_grid());
    }
    {
        let mut pair = GridPair::from_initial(initial.clone());
        wavefront::run_wavefront_op_on(rt, op, &mut pair, 2, sweeps).unwrap();
        check("wavefront", pair.current(sweeps));
    }
    solves
}

fn main() {
    let args = Args::parse();
    let rounds = args.get_usize("--rounds", 5);
    let edge = args.get_usize("--size", 24);
    let sweeps = args.get_usize("--sweeps", 6);

    let rt = Runtime::with_threads(2);
    // Warm dispatch so the worker threads exist before the baseline
    // thread count is taken.
    rt.run(2, &|_| {});
    let baseline_threads = thread_count();
    println!(
        "one runtime ({} workers), {rounds} rounds of the executor matrix on {edge}^3, \
         {sweeps} sweeps each",
        rt.threads()
    );

    let initial = problem(edge, 0xC0FFEE);
    let mut solves = 0;
    for round in 0..rounds {
        solves += solve_matrix(&rt, &Jacobi6, &initial, sweeps);
        solves += solve_matrix(&rt, &Avg27, &initial, sweeps);
        let now = thread_count();
        assert_eq!(
            now, baseline_threads,
            "thread count changed during round {round}: executors must not \
             spawn or leak threads per solve"
        );
    }

    match baseline_threads {
        Some(n) => println!(
            "all {solves} solves on one runtime verified bitwise; \
             process held steady at {n} threads"
        ),
        None => println!("all {solves} solves on one runtime verified bitwise"),
    }
}
