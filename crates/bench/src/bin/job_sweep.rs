//! Multi-tenant job-server throughput — the perf artifact of
//! `temporal_blocking::serve`.
//!
//! A closed-loop client drives a mixed stream of solve jobs (all four
//! operators, mixed dims, f64 + f32, fixed *and* tuned methods) through
//! one [`Server`] two ways over the **same core budget**:
//!
//! * **serial** — one job at a time: submit, wait, repeat (the
//!   one-tenant-at-a-time baseline every earlier bench measured);
//! * **concurrent** — all jobs in flight at once behind the bounded
//!   admission queue, slices racing over it.
//!
//! Emits `BENCH_jobs.json` with jobs/sec and p50/p99 client latency for
//! both modes (best-of `--reps`). Hard-asserts the serving contract:
//! every job's verify hash equals its sequential-oracle fingerprint,
//! tuned jobs after the warmup phase replay plans with **zero**
//! measurements, and concurrent throughput is at least the serial
//! baseline (strictly greater when the machine has ≥ 2 cache groups —
//! on a single cache group the slices collapse to one and the two modes
//! should tie).
//!
//! ```sh
//! cargo run --release -p tb-bench --bin job_sweep -- --jobs 64 --reps 3
//! cargo run --release -p tb-bench --bin job_sweep -- --smoke
//! ```

use std::collections::{HashMap, VecDeque};
use std::io::Write as _;
use std::time::{Duration, Instant};

use tb_bench::{p50, p99, Args};
use tb_grid::{init, Dims3, Grid3};
use temporal_blocking::prelude::*;
use temporal_blocking::topology;
use temporal_blocking::{solve_with, Method, TuneOptions};

/// The deterministic closed-loop job mix: index `i` always produces the
/// same spec, so serial and concurrent mode serve identical work.
struct Mix {
    edges: Vec<usize>,
    sweeps: usize,
    tuned: TuneOptions,
    /// Every 4th job tunes; the rest run fixed methods sized to the
    /// smallest slice.
    slice_threads: usize,
}

impl Mix {
    fn spec(&self, i: usize) -> JobSpec {
        let ops = [
            JobOp::Jacobi6,
            JobOp::Jacobi7Heat(0.1),
            JobOp::VarCoeff7Banded,
            JobOp::Avg27,
        ];
        let op = ops[i % 4];
        let dims = Dims3::cube(self.edges[i % self.edges.len()]);
        let seed = 0xA5A5 + i as u64;
        let payload = if i % 3 == 2 {
            JobPayload::F32(init::random(dims, seed))
        } else {
            JobPayload::F64(init::random(dims, seed))
        };
        let method = if i % 4 == 1 {
            JobMethod::Tuned(self.tuned.clone())
        } else {
            JobMethod::Fixed(match i % 3 {
                0 => Method::Parallel {
                    threads: self.slice_threads,
                    streaming_stores: false,
                },
                1 => Method::Sequential,
                // Wavefront needs a 2-thread team; narrower slices get
                // the spatially-blocked serial solver instead.
                _ if self.slice_threads >= 2 => Method::Wavefront { threads: 2 },
                _ => Method::Blocked { block: [8, 8, 8] },
            })
        };
        let mut spec = JobSpec::new(op, payload, self.sweeps, method);
        spec.tag = i as u64;
        spec
    }
}

/// Sequential-oracle fingerprint for spec `i`, computed once.
fn oracle_hash(spec: &JobSpec) -> u64 {
    fn run<T: tb_grid::Real>(op: JobOp, g: Grid3<T>, sweeps: usize) -> Grid3<T> {
        match op {
            JobOp::Jacobi6 => solve_with(&Jacobi6, g, sweeps, Method::Sequential),
            JobOp::Jacobi7Heat(k) => solve_with(&Jacobi7::heat(k), g, sweeps, Method::Sequential),
            JobOp::VarCoeff7Banded => {
                let d = g.dims();
                solve_with(&VarCoeff7::<T>::banded(d), g, sweeps, Method::Sequential)
            }
            _ => solve_with(&Avg27, g, sweeps, Method::Sequential),
        }
        .expect("oracle solve")
        .0
    }
    match &spec.payload {
        JobPayload::F64(g) => JobPayload::F64(run(spec.op, g.clone(), spec.sweeps)).fingerprint(),
        JobPayload::F32(g) => JobPayload::F32(run(spec.op, g.clone(), spec.sweeps)).fingerprint(),
    }
}

struct ModeResult {
    jobs_per_sec: f64,
    p50_ms: f64,
    p99_ms: f64,
    /// Tuning measurements performed across the whole run (must be 0
    /// after warmup: every tuned job replays a warm plan).
    tuning_measurements: usize,
    /// Fresh pool allocations across all jobs (0 on a warm single-slice
    /// server: the placement contract's allocation half).
    pool_fresh: u64,
    /// Mean per-job ingest + egress copy time (0 under client-pages).
    copy_ms_mean: f64,
}

/// Run the pre-built job mix through the server in one mode; verify
/// every job. The specs are materialized before the clock starts: the
/// artifact measures the server, not the client's grid generation.
fn drive(
    server: &Server,
    specs: &[JobSpec],
    oracles: &HashMap<u64, u64>,
    window: usize,
    expect_warm: bool,
) -> ModeResult {
    let njobs = specs.len();
    let t0 = Instant::now();
    // `window` jobs in flight at once (a fixed-concurrency closed-loop
    // client); window 1 is the serial one-at-a-time baseline. The
    // point of windowed submission is that the queue never runs dry,
    // so slices move job-to-job without parking.
    let reports: Vec<JobReport> = if window > 1 {
        let mut inflight: VecDeque<JobHandle> = VecDeque::with_capacity(window);
        let mut reports = Vec::with_capacity(njobs);
        for spec in specs {
            if inflight.len() == window {
                let h = inflight.pop_front().unwrap();
                reports.push(h.wait().expect("job must succeed").1);
            }
            inflight.push_back(
                server
                    .submit_blocking(spec.clone(), Duration::from_secs(600))
                    .expect("admission within deadline"),
            );
        }
        for h in inflight {
            reports.push(h.wait().expect("job must succeed").1);
        }
        reports
    } else {
        specs
            .iter()
            .map(|spec| {
                server
                    .submit_blocking(spec.clone(), Duration::from_secs(600))
                    .expect("admission within deadline")
                    .wait()
                    .expect("job must succeed")
                    .1
            })
            .collect()
    };
    let wall = t0.elapsed().as_secs_f64();

    let mut tuning_measurements = 0;
    for r in &reports {
        assert_eq!(
            r.verify_hash, oracles[&r.tag],
            "job {} ({} {:?}) diverged from the sequential oracle",
            r.tag, r.op, r.dims
        );
        if let Some(t) = &r.tuned {
            tuning_measurements += t.measurements;
            if expect_warm {
                assert!(
                    t.cache_hit && t.measurements == 0,
                    "job {}: tuned job after warmup must replay warm (hit={}, meas={})",
                    r.tag,
                    t.cache_hit,
                    t.measurements
                );
            }
        }
    }
    let lat_ms: Vec<f64> = reports
        .iter()
        .map(|r| r.latency().as_secs_f64() * 1e3)
        .collect();
    let copy_ms: f64 = reports
        .iter()
        .map(|r| (r.ingest + r.egress).as_secs_f64() * 1e3)
        .sum();
    ModeResult {
        jobs_per_sec: njobs as f64 / wall,
        p50_ms: p50(&lat_ms),
        p99_ms: p99(&lat_ms),
        tuning_measurements,
        pool_fresh: reports.iter().map(|r| r.pool_fresh).sum(),
        copy_ms_mean: copy_ms / njobs as f64,
    }
}

fn main() {
    let args = Args::parse();
    let smoke = args.has("--smoke");
    // Default to the many-small-jobs regime a job server exists for:
    // per-job dispatch overhead is a visible fraction of service time,
    // so keeping slices fed (and parked plans warm) is what's measured.
    let njobs = args.get_usize("--jobs", if smoke { 12 } else { 64 });
    let base = args.get_usize("--size", if smoke { 14 } else { 12 });
    let sweeps = args.get_usize("--sweeps", 2);
    let reps = args.get_usize("--reps", if smoke { 1 } else { 3 });

    let machine = topology::detect::detect();
    let cache_groups = machine.cache_groups().len();

    // Fresh plan-cache dir: the warmup phase is the only cold tuning.
    let cache_dir = std::env::temp_dir().join(format!("tb-job-sweep-{}", std::process::id()));
    std::fs::remove_dir_all(&cache_dir).ok();
    std::fs::create_dir_all(&cache_dir).expect("create cache dir");

    let server = Server::new(
        &machine,
        ServerConfig {
            queue_capacity: njobs.max(16),
            ..ServerConfig::default()
        },
    );
    let slices = server.slices().len();
    let slice_threads = server.slices().iter().map(|s| s.threads).min().unwrap();
    // One job in flight per slice plus one queued: every slice moves
    // job-to-job without parking, while the backlog stays small enough
    // that payloads are still cache-warm when a slice picks them up.
    let window = args.get_usize("--window", slices + 1);
    let mix = Mix {
        edges: vec![base, base + 4, base.saturating_sub(4).max(8)],
        sweeps,
        tuned: TuneOptions {
            cache_path: Some(cache_dir.join("serve-plans.json")),
            top_k: 2,
            params: Some(MachineParams::nehalem_ep()),
            families: vec![MethodFamily::Parallel],
            ..TuneOptions::default()
        },
        slice_threads,
    };

    println!(
        "job server — {} | {slices} slice(s) over {cache_groups} cache group(s), \
         {njobs} jobs/rep, best of {reps}\n",
        machine.signature()
    );
    for s in server.slices() {
        println!(
            "  slice {}: cores {:?}, {} workers, plan key {}",
            s.index, s.cores, s.threads, s.signature
        );
    }

    let specs: Vec<JobSpec> = (0..njobs).map(|i| mix.spec(i)).collect();
    let oracles: HashMap<u64, u64> = specs.iter().map(|s| (s.tag, oracle_hash(s))).collect();

    // Warmup: run the mix once to tune every Tuned key cold, fault in
    // pools, and park slice threads in steady state. Not measured.
    let warm = drive(&server, &specs, &oracles, window, false);
    println!(
        "\nwarmup: {} cold tuning measurements (all later reps must replay warm)",
        warm.tuning_measurements
    );

    let best = |server: &Server, window: usize| -> ModeResult {
        let mut best: Option<ModeResult> = None;
        for _ in 0..reps {
            let r = drive(server, &specs, &oracles, window, true);
            if best
                .as_ref()
                .map(|b| r.jobs_per_sec > b.jobs_per_sec)
                .unwrap_or(true)
            {
                best = Some(r);
            }
        }
        best.unwrap()
    };
    let serial = best(&server, 1);
    let concurrent = best(&server, window);
    let ratio = concurrent.jobs_per_sec / serial.jobs_per_sec;

    println!(
        "\n{:<11} {:>10} {:>10} {:>10}",
        "mode", "jobs/s", "p50 ms", "p99 ms"
    );
    println!(
        "{:<11} {:>10.1} {:>10.2} {:>10.2}",
        "serial", serial.jobs_per_sec, serial.p50_ms, serial.p99_ms
    );
    println!(
        "{:<11} {:>10.1} {:>10.2} {:>10.2}",
        "concurrent", concurrent.jobs_per_sec, concurrent.p50_ms, concurrent.p99_ms
    );
    println!("\nconcurrent/serial throughput: {ratio:.3}x");

    assert_eq!(
        serial.tuning_measurements + concurrent.tuning_measurements,
        0,
        "warm-plan jobs must perform zero tuning measurements"
    );
    // Warm-path allocation contract: after the warmup pass a single
    // slice has seen every job shape, so no later job may allocate.
    // (Multiple slices race over the queue, so which slice first sees a
    // shape is nondeterministic — the single-slice case is the one that
    // can be held exactly.)
    if slices == 1 {
        assert_eq!(
            serial.pool_fresh + concurrent.pool_fresh,
            0,
            "warm single-slice server must serve without fresh grid allocations"
        );
    }
    // Throughput contract (full runs only; smoke runs on noisy CI
    // runners check correctness and warm-plan economics, not speed).
    // With >= 2 cache groups the slices really run in parallel and
    // concurrent must win outright; a single cache group collapses to
    // one slice, where the best concurrency can do is tie serial (the
    // slice skips its per-job park/wake) — hold it to a tie within
    // scheduler noise.
    if !smoke {
        if cache_groups >= 2 {
            assert!(
                ratio > 1.0,
                "with {cache_groups} cache groups concurrent ({:.1} jobs/s) must beat serial ({:.1} jobs/s)",
                concurrent.jobs_per_sec,
                serial.jobs_per_sec
            );
        } else {
            assert!(
                ratio >= 0.95,
                "single-slice concurrent ({:.1} jobs/s) fell past a tie with serial ({:.1} jobs/s)",
                concurrent.jobs_per_sec,
                serial.jobs_per_sec
            );
        }
    }

    // ----------------------------------------------------------------
    // Placement ablation: the same concurrent mix through two fresh
    // servers that differ only in page placement. Worker-first-touch
    // ingests every payload into slice-local pooled pages; client-pages
    // computes directly on the grids the client allocated. The policies
    // are NOT forced: this measures what a production server does, and
    // on a single-node machine the server downgrades worker-first-touch
    // to zero-copy (the copy cannot improve locality there).
    // ----------------------------------------------------------------
    let numa_nodes = machine.num_numa_nodes();
    let ablate = |placement: Placement| -> ModeResult {
        let server = Server::new(
            &machine,
            ServerConfig {
                queue_capacity: njobs.max(16),
                placement,
                ..ServerConfig::default()
            },
        );
        // Same warmup economics as the main server: cold-fault pools,
        // replay the (already tuned) plans warm. Not measured.
        let _ = drive(&server, &specs, &oracles, window, false);
        best(&server, window)
    };
    let placed = ablate(Placement::WorkerFirstTouch);
    let client = ablate(Placement::ClientPages);
    let placement_ratio = placed.jobs_per_sec / client.jobs_per_sec;

    println!("\nplacement ablation ({numa_nodes} NUMA node(s)), concurrent window {window}:");
    println!(
        "{:<20} {:>10} {:>10} {:>12}",
        "placement", "jobs/s", "p50 ms", "copy ms/job"
    );
    for (name, r) in [
        (Placement::WorkerFirstTouch.name(), &placed),
        (Placement::ClientPages.name(), &client),
    ] {
        println!(
            "{:<20} {:>10.1} {:>10.2} {:>12.3}",
            name, r.jobs_per_sec, r.p50_ms, r.copy_ms_mean
        );
    }
    println!("worker-first-touch/client-pages throughput: {placement_ratio:.3}x");

    // Placement contract (full runs only). On >= 2 NUMA nodes the
    // ingest copy moves every page onto the serving slice's domain and
    // must win outright. On one node there is nothing to win, the
    // server runs both policies through the identical zero-copy path,
    // and the ratio must be a tie within scheduler noise.
    if !smoke {
        if numa_nodes >= 2 {
            assert!(
                placement_ratio > 1.0,
                "with {numa_nodes} NUMA nodes worker-first-touch ({:.1} jobs/s) must beat \
                 client-pages ({:.1} jobs/s)",
                placed.jobs_per_sec,
                client.jobs_per_sec
            );
        } else {
            assert!(
                placement_ratio >= 0.9,
                "single-node worker-first-touch ({:.1} jobs/s) fell past a tie with \
                 client-pages ({:.1} jobs/s)",
                placed.jobs_per_sec,
                client.jobs_per_sec
            );
        }
    }

    let json = format!(
        "{{\n  \"machine\": \"{sig}\",\n  \"cache_groups\": {cache_groups},\n  \
         \"slices\": {slices},\n  \"jobs\": {njobs},\n  \"reps\": {reps},\n  \
         \"sweeps\": {sweeps},\n  \"edges\": {edges:?},\n  \
         \"serial\": {{\"jobs_per_sec\": {sj:.2}, \"p50_ms\": {sp50:.3}, \"p99_ms\": {sp99:.3}}},\n  \
         \"concurrent\": {{\"jobs_per_sec\": {cj:.2}, \"p50_ms\": {cp50:.3}, \"p99_ms\": {cp99:.3}}},\n  \
         \"concurrent_over_serial\": {ratio:.3},\n  \
         \"numa_nodes\": {numa_nodes},\n  \
         \"placement\": {{\n    \
         \"worker_first_touch\": {{\"jobs_per_sec\": {pj:.2}, \"p50_ms\": {pp50:.3}, \"copy_ms_mean\": {pcopy:.4}}},\n    \
         \"client_pages\": {{\"jobs_per_sec\": {nj:.2}, \"p50_ms\": {np50:.3}, \"copy_ms_mean\": {ncopy:.4}}},\n    \
         \"worker_over_client\": {placement_ratio:.3}\n  }},\n  \
         \"cold_tuning_measurements\": {cold},\n  \
         \"warm_tuning_measurements\": 0,\n  \
         \"all_jobs_verified\": true\n}}\n",
        sig = machine.signature(),
        edges = mix.edges,
        sj = serial.jobs_per_sec,
        sp50 = serial.p50_ms,
        sp99 = serial.p99_ms,
        cj = concurrent.jobs_per_sec,
        cp50 = concurrent.p50_ms,
        cp99 = concurrent.p99_ms,
        pj = placed.jobs_per_sec,
        pp50 = placed.p50_ms,
        pcopy = placed.copy_ms_mean,
        nj = client.jobs_per_sec,
        np50 = client.p50_ms,
        ncopy = client.copy_ms_mean,
        cold = warm.tuning_measurements,
    );
    let out = args.get("--out").unwrap_or("BENCH_jobs.json");
    std::fs::File::create(out)
        .and_then(|mut f| f.write_all(json.as_bytes()))
        .expect("write jobs json");
    println!("wrote {out}");
}
