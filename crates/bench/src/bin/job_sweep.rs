//! Multi-tenant job-server throughput — the perf artifact of
//! `temporal_blocking::serve`.
//!
//! A closed-loop client drives a mixed stream of solve jobs (all four
//! operators, mixed dims, f64 + f32, fixed *and* tuned methods) through
//! one [`Server`] two ways over the **same core budget**:
//!
//! * **serial** — one job at a time: submit, wait, repeat (the
//!   one-tenant-at-a-time baseline every earlier bench measured);
//! * **concurrent** — all jobs in flight at once behind the bounded
//!   admission queue, slices racing over it.
//!
//! Emits `BENCH_jobs.json` with jobs/sec and p50/p99 client latency for
//! both modes (best-of `--reps`). Hard-asserts the serving contract:
//! every job's verify hash equals its sequential-oracle fingerprint,
//! tuned jobs after the warmup phase replay plans with **zero**
//! measurements, and concurrent throughput is at least the serial
//! baseline (strictly greater when the machine has ≥ 2 cache groups —
//! on a single cache group the slices collapse to one and the two modes
//! should tie).
//!
//! A **mixed-priority ablation** then overloads two fresh servers with
//! the same burst — a pile of big `Batch` jobs followed by small
//! `Latency` (deadline-bearing) and `Normal` jobs — differing only in
//! packing policy (FIFO vs [`SchedPolicy::Deadline`]). EDF must cut the
//! `Latency`-class p99 below FIFO's, with zero starved `Batch` jobs and
//! every hash verified; an `Admission::Shed` demo counts infeasible
//! submissions shed at the door.
//!
//! ```sh
//! cargo run --release -p tb-bench --bin job_sweep -- --jobs 64 --reps 3
//! cargo run --release -p tb-bench --bin job_sweep -- --smoke
//! ```

use std::collections::{HashMap, VecDeque};
use std::io::Write as _;
use std::time::{Duration, Instant};

use tb_bench::{p50, p99, Args};
use tb_grid::{init, Dims3, Grid3};
use temporal_blocking::prelude::*;
use temporal_blocking::topology;
use temporal_blocking::{solve_with, Method, TuneOptions};

// Every throughput assertion below compares warmed best-of-`--reps`
// runs (never a single raw run: the warmup pass faults pools and tunes
// plans cold, and `best` keeps the fastest rep), so a band only has to
// absorb scheduler noise around a genuine tie — not cold-start noise.

/// A "tie" between two modes that share one execution path may still
/// jitter by scheduler luck; allow concurrent to trail serial by 5%.
const TIE_BAND: f64 = 0.95;

/// The single-NUMA-node placement tie additionally crosses two distinct
/// servers (separate pools and plan caches), so allow 10%.
const NUMA_TIE_BAND: f64 = 0.90;

/// Smoke-mode ceiling for the EDF-vs-FIFO `Latency`-class p99 contract:
/// on a noisy 2-core CI runner the structural gap can collapse, so only
/// require EDF not to be *worse* than FIFO by more than 10%.
const LATENCY_SMOKE_BAND: f64 = 1.10;

/// The deterministic closed-loop job mix: index `i` always produces the
/// same spec, so serial and concurrent mode serve identical work.
struct Mix {
    edges: Vec<usize>,
    sweeps: usize,
    tuned: TuneOptions,
    /// Every 4th job tunes; the rest run fixed methods sized to the
    /// smallest slice.
    slice_threads: usize,
}

impl Mix {
    fn spec(&self, i: usize) -> JobSpec {
        let ops = [
            JobOp::Jacobi6,
            JobOp::Jacobi7Heat(0.1),
            JobOp::VarCoeff7Banded,
            JobOp::Avg27,
        ];
        let op = ops[i % 4];
        let dims = Dims3::cube(self.edges[i % self.edges.len()]);
        let seed = 0xA5A5 + i as u64;
        let payload = if i % 3 == 2 {
            JobPayload::F32(init::random(dims, seed))
        } else {
            JobPayload::F64(init::random(dims, seed))
        };
        let method = if i % 4 == 1 {
            JobMethod::Tuned(self.tuned.clone())
        } else {
            JobMethod::Fixed(match i % 3 {
                0 => Method::Parallel {
                    threads: self.slice_threads,
                    streaming_stores: false,
                },
                1 => Method::Sequential,
                // Wavefront needs a 2-thread team; narrower slices get
                // the spatially-blocked serial solver instead.
                _ if self.slice_threads >= 2 => Method::Wavefront { threads: 2 },
                _ => Method::Blocked { block: [8, 8, 8] },
            })
        };
        let mut spec = JobSpec::new(op, payload, self.sweeps, method);
        spec.tag = i as u64;
        spec
    }
}

/// Sequential-oracle fingerprint for spec `i`, computed once.
fn oracle_hash(spec: &JobSpec) -> u64 {
    fn run<T: tb_grid::Real>(op: JobOp, g: Grid3<T>, sweeps: usize) -> Grid3<T> {
        match op {
            JobOp::Jacobi6 => solve_with(&Jacobi6, g, sweeps, Method::Sequential),
            JobOp::Jacobi7Heat(k) => solve_with(&Jacobi7::heat(k), g, sweeps, Method::Sequential),
            JobOp::VarCoeff7Banded => {
                let d = g.dims();
                solve_with(&VarCoeff7::<T>::banded(d), g, sweeps, Method::Sequential)
            }
            _ => solve_with(&Avg27, g, sweeps, Method::Sequential),
        }
        .expect("oracle solve")
        .0
    }
    match &spec.payload {
        JobPayload::F64(g) => JobPayload::F64(run(spec.op, g.clone(), spec.sweeps)).fingerprint(),
        JobPayload::F32(g) => JobPayload::F32(run(spec.op, g.clone(), spec.sweeps)).fingerprint(),
    }
}

struct ModeResult {
    jobs_per_sec: f64,
    p50_ms: f64,
    p99_ms: f64,
    /// Tuning measurements performed across the whole run (must be 0
    /// after warmup: every tuned job replays a warm plan).
    tuning_measurements: usize,
    /// Fresh pool allocations across all jobs (0 on a warm single-slice
    /// server: the placement contract's allocation half).
    pool_fresh: u64,
    /// Mean per-job ingest + egress copy time (0 under client-pages).
    copy_ms_mean: f64,
}

/// Run the pre-built job mix through the server in one mode; verify
/// every job. The specs are materialized before the clock starts: the
/// artifact measures the server, not the client's grid generation.
fn drive(
    server: &Server,
    specs: &[JobSpec],
    oracles: &HashMap<u64, u64>,
    window: usize,
    expect_warm: bool,
) -> ModeResult {
    let njobs = specs.len();
    let t0 = Instant::now();
    // `window` jobs in flight at once (a fixed-concurrency closed-loop
    // client); window 1 is the serial one-at-a-time baseline. The
    // point of windowed submission is that the queue never runs dry,
    // so slices move job-to-job without parking.
    let reports: Vec<JobReport> = if window > 1 {
        let mut inflight: VecDeque<JobHandle> = VecDeque::with_capacity(window);
        let mut reports = Vec::with_capacity(njobs);
        for spec in specs {
            if inflight.len() == window {
                let h = inflight.pop_front().unwrap();
                reports.push(h.wait().expect("job must succeed").1);
            }
            inflight.push_back(
                server
                    .submit_blocking(spec.clone(), Duration::from_secs(600))
                    .expect("admission within deadline"),
            );
        }
        for h in inflight {
            reports.push(h.wait().expect("job must succeed").1);
        }
        reports
    } else {
        specs
            .iter()
            .map(|spec| {
                server
                    .submit_blocking(spec.clone(), Duration::from_secs(600))
                    .expect("admission within deadline")
                    .wait()
                    .expect("job must succeed")
                    .1
            })
            .collect()
    };
    let wall = t0.elapsed().as_secs_f64();

    let mut tuning_measurements = 0;
    for r in &reports {
        assert_eq!(
            r.verify_hash, oracles[&r.tag],
            "job {} ({} {:?}) diverged from the sequential oracle",
            r.tag, r.op, r.dims
        );
        if let Some(t) = &r.tuned {
            tuning_measurements += t.measurements;
            if expect_warm {
                assert!(
                    t.cache_hit && t.measurements == 0,
                    "job {}: tuned job after warmup must replay warm (hit={}, meas={})",
                    r.tag,
                    t.cache_hit,
                    t.measurements
                );
            }
        }
    }
    let lat_ms: Vec<f64> = reports
        .iter()
        .map(|r| r.latency().as_secs_f64() * 1e3)
        .collect();
    let copy_ms: f64 = reports
        .iter()
        .map(|r| (r.ingest + r.egress).as_secs_f64() * 1e3)
        .sum();
    ModeResult {
        jobs_per_sec: njobs as f64 / wall,
        p50_ms: p50(&lat_ms),
        p99_ms: p99(&lat_ms),
        tuning_measurements,
        pool_fresh: reports.iter().map(|r| r.pool_fresh).sum(),
        copy_ms_mean: copy_ms / njobs as f64,
    }
}

fn main() {
    let args = Args::parse();
    let smoke = args.has("--smoke");
    // Default to the many-small-jobs regime a job server exists for:
    // per-job dispatch overhead is a visible fraction of service time,
    // so keeping slices fed (and parked plans warm) is what's measured.
    let njobs = args.get_usize("--jobs", if smoke { 12 } else { 64 });
    let base = args.get_usize("--size", if smoke { 14 } else { 12 });
    let sweeps = args.get_usize("--sweeps", 2);
    // Even smoke runs take best-of-2: a single raw run has no defense
    // against one unlucky scheduling quantum (see TIE_BAND above).
    let reps = args.get_usize("--reps", if smoke { 2 } else { 3 });

    let machine = topology::detect::detect();
    let cache_groups = machine.cache_groups().len();

    // Fresh plan-cache dir: the warmup phase is the only cold tuning.
    let cache_dir = std::env::temp_dir().join(format!("tb-job-sweep-{}", std::process::id()));
    std::fs::remove_dir_all(&cache_dir).ok();
    std::fs::create_dir_all(&cache_dir).expect("create cache dir");

    let server = Server::new(
        &machine,
        ServerConfig {
            queue_capacity: njobs.max(16),
            ..ServerConfig::default()
        },
    );
    let slices = server.slices().len();
    let slice_threads = server.slices().iter().map(|s| s.threads).min().unwrap();
    // One job in flight per slice plus one queued: every slice moves
    // job-to-job without parking, while the backlog stays small enough
    // that payloads are still cache-warm when a slice picks them up.
    let window = args.get_usize("--window", slices + 1);
    let mix = Mix {
        edges: vec![base, base + 4, base.saturating_sub(4).max(8)],
        sweeps,
        tuned: TuneOptions {
            cache_path: Some(cache_dir.join("serve-plans.json")),
            top_k: 2,
            params: Some(MachineParams::nehalem_ep()),
            families: vec![MethodFamily::Parallel],
            ..TuneOptions::default()
        },
        slice_threads,
    };

    println!(
        "job server — {} | {slices} slice(s) over {cache_groups} cache group(s), \
         {njobs} jobs/rep, best of {reps}\n",
        machine.signature()
    );
    for s in server.slices() {
        println!(
            "  slice {}: cores {:?}, {} workers, plan key {}",
            s.index, s.cores, s.threads, s.signature
        );
    }

    let specs: Vec<JobSpec> = (0..njobs).map(|i| mix.spec(i)).collect();
    let oracles: HashMap<u64, u64> = specs.iter().map(|s| (s.tag, oracle_hash(s))).collect();

    // Warmup: run the mix once to tune every Tuned key cold, fault in
    // pools, and park slice threads in steady state. Not measured.
    let warm = drive(&server, &specs, &oracles, window, false);
    println!(
        "\nwarmup: {} cold tuning measurements (all later reps must replay warm)",
        warm.tuning_measurements
    );

    let best = |server: &Server, window: usize| -> ModeResult {
        let mut best: Option<ModeResult> = None;
        for _ in 0..reps {
            let r = drive(server, &specs, &oracles, window, true);
            if best
                .as_ref()
                .map(|b| r.jobs_per_sec > b.jobs_per_sec)
                .unwrap_or(true)
            {
                best = Some(r);
            }
        }
        best.unwrap()
    };
    let serial = best(&server, 1);
    let concurrent = best(&server, window);
    let ratio = concurrent.jobs_per_sec / serial.jobs_per_sec;

    println!(
        "\n{:<11} {:>10} {:>10} {:>10}",
        "mode", "jobs/s", "p50 ms", "p99 ms"
    );
    println!(
        "{:<11} {:>10.1} {:>10.2} {:>10.2}",
        "serial", serial.jobs_per_sec, serial.p50_ms, serial.p99_ms
    );
    println!(
        "{:<11} {:>10.1} {:>10.2} {:>10.2}",
        "concurrent", concurrent.jobs_per_sec, concurrent.p50_ms, concurrent.p99_ms
    );
    println!("\nconcurrent/serial throughput: {ratio:.3}x");

    assert_eq!(
        serial.tuning_measurements + concurrent.tuning_measurements,
        0,
        "warm-plan jobs must perform zero tuning measurements"
    );
    // Warm-path allocation contract: after the warmup pass a single
    // slice has seen every job shape, so no later job may allocate.
    // (Multiple slices race over the queue, so which slice first sees a
    // shape is nondeterministic — the single-slice case is the one that
    // can be held exactly.)
    if slices == 1 {
        assert_eq!(
            serial.pool_fresh + concurrent.pool_fresh,
            0,
            "warm single-slice server must serve without fresh grid allocations"
        );
    }
    // Throughput contract (full runs only; smoke runs on noisy CI
    // runners check correctness and warm-plan economics, not speed).
    // With >= 2 cache groups the slices really run in parallel and
    // concurrent must win outright; a single cache group collapses to
    // one slice, where the best concurrency can do is tie serial (the
    // slice skips its per-job park/wake) — hold it to a tie within
    // scheduler noise.
    if !smoke {
        if cache_groups >= 2 {
            assert!(
                ratio > 1.0,
                "with {cache_groups} cache groups concurrent ({:.1} jobs/s) must beat serial ({:.1} jobs/s)",
                concurrent.jobs_per_sec,
                serial.jobs_per_sec
            );
        } else {
            assert!(
                ratio >= TIE_BAND,
                "single-slice concurrent ({:.1} jobs/s) fell past a tie with serial ({:.1} jobs/s)",
                concurrent.jobs_per_sec,
                serial.jobs_per_sec
            );
        }
    }

    // ----------------------------------------------------------------
    // Placement ablation: the same concurrent mix through two fresh
    // servers that differ only in page placement. Worker-first-touch
    // ingests every payload into slice-local pooled pages; client-pages
    // computes directly on the grids the client allocated. The policies
    // are NOT forced: this measures what a production server does, and
    // on a single-node machine the server downgrades worker-first-touch
    // to zero-copy (the copy cannot improve locality there).
    // ----------------------------------------------------------------
    let numa_nodes = machine.num_numa_nodes();
    let ablate = |placement: Placement| -> ModeResult {
        let server = Server::new(
            &machine,
            ServerConfig {
                queue_capacity: njobs.max(16),
                placement,
                ..ServerConfig::default()
            },
        );
        // Same warmup economics as the main server: cold-fault pools,
        // replay the (already tuned) plans warm. Not measured.
        let _ = drive(&server, &specs, &oracles, window, false);
        best(&server, window)
    };
    let placed = ablate(Placement::WorkerFirstTouch);
    let client = ablate(Placement::ClientPages);
    let placement_ratio = placed.jobs_per_sec / client.jobs_per_sec;

    println!("\nplacement ablation ({numa_nodes} NUMA node(s)), concurrent window {window}:");
    println!(
        "{:<20} {:>10} {:>10} {:>12}",
        "placement", "jobs/s", "p50 ms", "copy ms/job"
    );
    for (name, r) in [
        (Placement::WorkerFirstTouch.name(), &placed),
        (Placement::ClientPages.name(), &client),
    ] {
        println!(
            "{:<20} {:>10.1} {:>10.2} {:>12.3}",
            name, r.jobs_per_sec, r.p50_ms, r.copy_ms_mean
        );
    }
    println!("worker-first-touch/client-pages throughput: {placement_ratio:.3}x");

    // Placement contract (full runs only). On >= 2 NUMA nodes the
    // ingest copy moves every page onto the serving slice's domain and
    // must win outright. On one node there is nothing to win, the
    // server runs both policies through the identical zero-copy path,
    // and the ratio must be a tie within scheduler noise.
    if !smoke {
        if numa_nodes >= 2 {
            assert!(
                placement_ratio > 1.0,
                "with {numa_nodes} NUMA nodes worker-first-touch ({:.1} jobs/s) must beat \
                 client-pages ({:.1} jobs/s)",
                placed.jobs_per_sec,
                client.jobs_per_sec
            );
        } else {
            assert!(
                placement_ratio >= NUMA_TIE_BAND,
                "single-node worker-first-touch ({:.1} jobs/s) fell past a tie with \
                 client-pages ({:.1} jobs/s)",
                placed.jobs_per_sec,
                client.jobs_per_sec
            );
        }
    }

    // ----------------------------------------------------------------
    // Mixed-priority ablation: the same overloaded burst — a pile of
    // big Batch jobs submitted first, then small Latency jobs (with
    // deadlines) interleaved with Normal jobs — through two fresh
    // servers differing ONLY in packing policy. Under FIFO the urgent
    // work convoys behind the whole Batch pile; under EDF it jumps it,
    // so the Latency-class p99 must drop. The gap is structural (pile
    // length vs one in-flight job), not a timing accident.
    // ----------------------------------------------------------------
    let pjobs = args.get_usize("--priority-jobs", if smoke { 18 } else { 48 });
    let batch_edge = if smoke { 20 } else { 28 };
    let batch_sweeps = sweeps * 4;
    let nbatch = (pjobs * 3) / 5; // ~60% of the burst is the Batch pile
    let lat_deadline = Duration::from_millis(15);
    let aging = Duration::from_millis(25);
    let pspec = |i: usize| -> JobSpec {
        let tag = 1_000 + i as u64;
        let mut spec = if i < nbatch {
            JobSpec::new(
                JobOp::Jacobi6,
                JobPayload::F64(init::random(Dims3::cube(batch_edge), tag)),
                batch_sweeps,
                JobMethod::Fixed(Method::Parallel {
                    threads: slice_threads,
                    streaming_stores: false,
                }),
            )
            .with_priority(Priority::Batch)
        } else if (i - nbatch).is_multiple_of(2) {
            JobSpec::new(
                JobOp::Jacobi7Heat(0.1),
                JobPayload::F64(init::random(Dims3::cube(10), tag)),
                1,
                JobMethod::Fixed(Method::Sequential),
            )
            .with_priority(Priority::Latency)
            .with_deadline(lat_deadline)
        } else {
            JobSpec::new(
                JobOp::Avg27,
                JobPayload::F32(init::random(Dims3::cube(10), tag)),
                1,
                JobMethod::Fixed(Method::Sequential),
            )
            .with_priority(Priority::Normal)
        };
        spec.tag = tag;
        spec
    };
    let pspecs: Vec<JobSpec> = (0..pjobs).map(pspec).collect();
    let poracles: HashMap<u64, u64> = pspecs.iter().map(|s| (s.tag, oracle_hash(s))).collect();

    // One overloaded burst: everything submitted before anything is
    // waited on, so the queue really holds the whole trace at once.
    let burst = |server: &Server| -> Vec<JobReport> {
        let handles: Vec<JobHandle> = pspecs
            .iter()
            .map(|s| {
                server
                    .submit_blocking(s.clone(), Duration::from_secs(600))
                    .expect("priority burst admitted")
            })
            .collect();
        let reports: Vec<JobReport> = handles
            .into_iter()
            .map(|h| h.wait().expect("priority job must succeed").1)
            .collect();
        for r in &reports {
            assert_eq!(
                r.verify_hash, poracles[&r.tag],
                "priority job {} ({} {:?}) diverged from the sequential oracle",
                r.tag, r.op, r.dims
            );
        }
        reports
    };
    let class_lat_ms = |reports: &[JobReport], p: Priority| -> Vec<f64> {
        reports
            .iter()
            .filter(|r| r.priority == p)
            .map(|r| r.latency().as_secs_f64() * 1e3)
            .collect()
    };
    // Best-of-reps per policy, judged by the metric under test (the
    // Latency-class p99) — the same warmed best-of discipline as every
    // other assertion in this bench.
    let run_policy = |policy: SchedPolicy| -> (Vec<JobReport>, ServerStats, Server) {
        let server = Server::new(
            &machine,
            ServerConfig {
                queue_capacity: pjobs.max(16),
                policy,
                aging,
                ..ServerConfig::default()
            },
        );
        let _ = burst(&server); // warmup: fault pools, park threads
        let mut best: Option<Vec<JobReport>> = None;
        for _ in 0..reps {
            let r = burst(&server);
            let p99_now = p99(&class_lat_ms(&r, Priority::Latency));
            if best
                .as_ref()
                .map(|b| p99_now < p99(&class_lat_ms(b, Priority::Latency)))
                .unwrap_or(true)
            {
                best = Some(r);
            }
        }
        let reports = best.unwrap();
        let stats = server.stats();
        (reports, stats, server)
    };
    let (fifo_reports, fifo_stats, _fifo_server) = run_policy(SchedPolicy::Fifo);
    let (edf_reports, edf_stats, _edf_server) = run_policy(SchedPolicy::Deadline);

    println!("\nmixed-priority ablation: {pjobs} jobs/burst ({nbatch} batch), best of {reps}:");
    println!(
        "{:<10} {:>14} {:>14} {:>14} {:>14}",
        "policy", "lat p50 ms", "lat p99 ms", "norm p99 ms", "batch p99 ms"
    );
    let mut table: HashMap<&str, [f64; 6]> = HashMap::new();
    for (name, reports) in [("fifo", &fifo_reports), ("deadline", &edf_reports)] {
        let lat = class_lat_ms(reports, Priority::Latency);
        let nor = class_lat_ms(reports, Priority::Normal);
        let bat = class_lat_ms(reports, Priority::Batch);
        let misses = reports
            .iter()
            .filter(|r| r.deadline_met == Some(false))
            .count() as f64;
        println!(
            "{:<10} {:>14.2} {:>14.2} {:>14.2} {:>14.2}",
            name,
            p50(&lat),
            p99(&lat),
            p99(&nor),
            p99(&bat)
        );
        table.insert(
            name,
            [
                p50(&lat),
                p99(&lat),
                p50(&nor),
                p99(&nor),
                p99(&bat),
                misses,
            ],
        );
    }
    let fifo_lat_p99 = table["fifo"][1];
    let edf_lat_p99 = table["deadline"][1];
    let lat_p99_ratio = fifo_lat_p99 / edf_lat_p99;
    println!("fifo/deadline Latency-class p99: {lat_p99_ratio:.2}x");

    // Zero starved Batch jobs, either policy: every burst job was
    // waited on above, so completion is already proven — cross-check
    // the server's own books (completed = warmup + measured reps, no
    // failures, no cancels).
    let expected_batch = (nbatch * (reps + 1)) as u64;
    for (name, stats) in [("fifo", &fifo_stats), ("deadline", &edf_stats)] {
        let b = stats.class(Priority::Batch);
        assert_eq!(
            b.completed, expected_batch,
            "{name}: every Batch job must complete (zero starved)"
        );
        assert_eq!(b.failed, 0, "{name}: no Batch job may fail");
        assert_eq!(b.cancelled, 0, "{name}: no Batch job was cancelled");
    }
    // The headline deadline-scheduling contract: EDF cuts the
    // Latency-class tail under overload. Strict in full runs; smoke
    // holds a no-worse band (see LATENCY_SMOKE_BAND).
    if !smoke {
        assert!(
            edf_lat_p99 < fifo_lat_p99,
            "Deadline policy must cut Latency-class p99 below FIFO's \
             ({edf_lat_p99:.2} ms vs {fifo_lat_p99:.2} ms)"
        );
    } else {
        assert!(
            edf_lat_p99 <= fifo_lat_p99 * LATENCY_SMOKE_BAND,
            "smoke: Deadline Latency-class p99 ({edf_lat_p99:.2} ms) fell past \
             FIFO's ({fifo_lat_p99:.2} ms) by more than the band"
        );
    }

    // Admission-shedding demo: a server predicting from the tb-model
    // cache-bandwidth floor rejects hopeless deadlines at the door.
    let shed_server = Server::new(
        &machine,
        ServerConfig {
            admission: Admission::Shed(MachineParams::nehalem_ep()),
            ..ServerConfig::default()
        },
    );
    for seed in 0..2u64 {
        let spec = JobSpec::new(
            JobOp::Jacobi6,
            JobPayload::F64(init::random(Dims3::cube(48), seed)),
            8,
            JobMethod::Fixed(Method::Sequential),
        )
        .with_deadline(Duration::from_micros(1));
        match shed_server.submit(spec) {
            Err(Rejected::Infeasible(_, floor)) => {
                assert!(floor > Duration::from_micros(1));
            }
            Ok(_) => panic!("an infeasible deadline was admitted"),
            Err(_) => panic!("expected Infeasible"),
        }
    }
    let sheds = shed_server.stats().sheds;
    assert_eq!(sheds, 2, "both hopeless submissions must be shed");
    println!("admission shedding: {sheds}/2 infeasible deadlines rejected at submission");

    let json = format!(
        "{{\n  \"machine\": \"{sig}\",\n  \"cache_groups\": {cache_groups},\n  \
         \"slices\": {slices},\n  \"jobs\": {njobs},\n  \"reps\": {reps},\n  \
         \"sweeps\": {sweeps},\n  \"edges\": {edges:?},\n  \
         \"serial\": {{\"jobs_per_sec\": {sj:.2}, \"p50_ms\": {sp50:.3}, \"p99_ms\": {sp99:.3}}},\n  \
         \"concurrent\": {{\"jobs_per_sec\": {cj:.2}, \"p50_ms\": {cp50:.3}, \"p99_ms\": {cp99:.3}}},\n  \
         \"concurrent_over_serial\": {ratio:.3},\n  \
         \"numa_nodes\": {numa_nodes},\n  \
         \"placement\": {{\n    \
         \"worker_first_touch\": {{\"jobs_per_sec\": {pj:.2}, \"p50_ms\": {pp50:.3}, \"copy_ms_mean\": {pcopy:.4}}},\n    \
         \"client_pages\": {{\"jobs_per_sec\": {nj:.2}, \"p50_ms\": {np50:.3}, \"copy_ms_mean\": {ncopy:.4}}},\n    \
         \"worker_over_client\": {placement_ratio:.3}\n  }},\n  \
         \"priority\": {{\n    \
         \"jobs\": {pjobs}, \"batch_jobs\": {nbatch}, \"batch_edge\": {batch_edge},\n    \
         \"aging_ms\": {aging_ms}, \"latency_deadline_ms\": {lat_deadline_ms},\n    \
         \"fifo\": {{\"latency_p50_ms\": {fl50:.3}, \"latency_p99_ms\": {fl99:.3}, \
         \"normal_p99_ms\": {fn99:.3}, \"batch_p99_ms\": {fb99:.3}, \"deadline_misses\": {fmiss}}},\n    \
         \"deadline\": {{\"latency_p50_ms\": {dl50:.3}, \"latency_p99_ms\": {dl99:.3}, \
         \"normal_p99_ms\": {dn99:.3}, \"batch_p99_ms\": {db99:.3}, \"deadline_misses\": {dmiss}}},\n    \
         \"fifo_over_deadline_latency_p99\": {lat_p99_ratio:.3},\n    \
         \"batch_starved\": 0,\n    \
         \"infeasible_sheds\": {sheds}\n  }},\n  \
         \"cold_tuning_measurements\": {cold},\n  \
         \"warm_tuning_measurements\": 0,\n  \
         \"all_jobs_verified\": true\n}}\n",
        sig = machine.signature(),
        edges = mix.edges,
        aging_ms = aging.as_millis(),
        lat_deadline_ms = lat_deadline.as_millis(),
        fl50 = table["fifo"][0],
        fl99 = table["fifo"][1],
        fn99 = table["fifo"][3],
        fb99 = table["fifo"][4],
        fmiss = table["fifo"][5] as u64,
        dl50 = table["deadline"][0],
        dl99 = table["deadline"][1],
        dn99 = table["deadline"][3],
        db99 = table["deadline"][4],
        dmiss = table["deadline"][5] as u64,
        sj = serial.jobs_per_sec,
        sp50 = serial.p50_ms,
        sp99 = serial.p99_ms,
        cj = concurrent.jobs_per_sec,
        cp50 = concurrent.p50_ms,
        cp99 = concurrent.p99_ms,
        pj = placed.jobs_per_sec,
        pp50 = placed.p50_ms,
        pcopy = placed.copy_ms_mean,
        nj = client.jobs_per_sec,
        np50 = client.p50_ms,
        ncopy = client.copy_ms_mean,
        cold = warm.tuning_measurements,
    );
    let out = args.get("--out").unwrap_or("BENCH_jobs.json");
    std::fs::File::create(out)
        .and_then(|mut f| f.write_all(json.as_bytes()))
        .expect("write jobs json");
    println!("wrote {out}");
}
