//! # tb-bench — the experiment harness
//!
//! One binary per paper artifact (see DESIGN.md §3):
//!
//! | binary | artifact |
//! |--------|----------|
//! | `fig3_left` | Fig. 3 (left): socket/node MLUP/s, standard vs pipelined variants + model |
//! | `fig3_right` | Fig. 3 (right): performance vs pipeline looseness `d_u - d_l` |
//! | `fig5` | Fig. 5: multi-layer halo advantage + efficiency inset |
//! | `fig6` | Fig. 6: strong/weak scaling 1..64 nodes, 4 configurations + ideal lines |
//! | `roofline` | Eq. 2: STREAM-calibrated baseline expectation vs measurement |
//! | `model_table` | §1.4 numbers: Eq. 4/5 table, 16T/(7+4T), limits |
//! | `ablation_t` | §1.5: updates-per-thread sweep (optimum T=2) |
//! | `ablation_block` | §1.5: inner block length sweep (optimum b_x≈120) |
//! | `ablation_delay` | §1.5: team delay sweep (~3% at d_t=8) |
//! | `halo_profile` | §2.2: buffer-copy vs transfer overhead, message aggregation |
//!
//! Each binary accepts `--mode host` (measure on this machine) and, where
//! the paper's hardware matters, `--mode nehalem` (analytic reproduction
//! with the paper's machine parameters). Criterion microbenches live in
//! `benches/`.

use std::time::Duration;

use tb_grid::{init, Dims3, Grid3};
use tb_stencil::stats::RunStats;

/// Minimal CLI: `--key value` pairs and bare flags.
pub struct Args {
    raw: Vec<String>,
}

impl Args {
    pub fn parse() -> Self {
        Self {
            raw: std::env::args().skip(1).collect(),
        }
    }

    pub fn get(&self, key: &str) -> Option<&str> {
        self.raw
            .iter()
            .position(|a| a == key)
            .and_then(|i| self.raw.get(i + 1))
            .map(|s| s.as_str())
    }

    /// True when the bare flag `key` is present (no value expected).
    pub fn has(&self, key: &str) -> bool {
        self.raw.iter().any(|a| a == key)
    }

    pub fn get_usize(&self, key: &str, default: usize) -> usize {
        self.get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    pub fn mode(&self) -> &str {
        self.get("--mode").unwrap_or("host")
    }
}

/// Repeat a measured run, keeping the best (STREAM convention: the best
/// repetition is the least-disturbed one).
pub fn best_of<F: FnMut() -> RunStats>(reps: usize, mut f: F) -> RunStats {
    assert!(reps >= 1);
    let mut best: Option<RunStats> = None;
    for _ in 0..reps {
        let s = f();
        if best.map(|b| s.mlups() > b.mlups()).unwrap_or(true) {
            best = Some(s);
        }
    }
    best.unwrap()
}

/// [`best_of`] preceded by one discarded warm-up repetition: the warm-up
/// faults in pages, populates caches, and spins up lazy worker state, so
/// the timed repetitions measure steady state instead of first-touch
/// noise (the mean-vs-best gap that made early sweeps jittery).
pub fn warmed_best_of<F: FnMut() -> RunStats>(reps: usize, mut f: F) -> RunStats {
    let _ = f();
    best_of(reps, f)
}

/// The `p`-th percentile (0 ≤ p ≤ 100) of `samples` with linear
/// interpolation between closest ranks (the R-7/NumPy default): the
/// rank is `p/100 · (n−1)`, fractional ranks interpolate between the
/// two neighboring order statistics. Input order does not matter.
///
/// # Panics
/// Panics on an empty sample set or `p` outside `[0, 100]`.
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    assert!(!samples.is_empty(), "percentile of an empty sample set");
    assert!((0.0..=100.0).contains(&p), "percentile {p} outside [0,100]");
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("percentile: NaN sample"));
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + frac * (sorted[hi] - sorted[lo])
}

/// Median: [`percentile`] at 50.
pub fn p50(samples: &[f64]) -> f64 {
    percentile(samples, 50.0)
}

/// [`percentile`] at 95.
pub fn p95(samples: &[f64]) -> f64 {
    percentile(samples, 95.0)
}

/// Tail latency: [`percentile`] at 99.
pub fn p99(samples: &[f64]) -> f64 {
    percentile(samples, 99.0)
}

/// The standard random problem used by all measurement binaries.
pub fn problem(edge: usize, seed: u64) -> Grid3<f64> {
    init::random(Dims3::cube(edge), seed)
}

/// A host-appropriate default problem edge: big enough to spill the last-
/// level cache, small enough to finish quickly. Overridable with
/// `--size`.
pub fn default_edge() -> usize {
    let mach = tb_topology::detect::detect();
    let cache = mach.shared_cache().map(|c| c.size_bytes).unwrap_or(8 << 20);
    // Two grids should exceed ~4x the shared cache.
    let bytes = 4 * cache;
    (((bytes / 16) as f64).cbrt() as usize).clamp(64, 256)
}

/// Pretty-print one table row of label + columns.
pub fn row(label: &str, cols: &[String]) {
    print!("{label:<34}");
    for c in cols {
        print!(" {c:>14}");
    }
    println!();
}

pub fn fmt_mlups(s: &RunStats) -> String {
    format!("{:.1}", s.mlups())
}

pub fn fmt_ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn best_of_picks_max_rate() {
        let mut times = [3, 1, 2].iter().copied();
        let s = best_of(3, move || {
            RunStats::new(1000, Duration::from_millis(times.next().unwrap()))
        });
        assert_eq!(s.elapsed, Duration::from_millis(1));
    }

    #[test]
    fn warmed_best_of_discards_the_first_rep() {
        // The warm-up rep is the fastest here; it must not win.
        let mut times = [1u64, 5, 3, 4].iter().copied();
        let s = warmed_best_of(3, move || {
            RunStats::new(1000, Duration::from_millis(times.next().unwrap()))
        });
        assert_eq!(s.elapsed, Duration::from_millis(3));
    }

    #[test]
    fn percentiles_of_known_distributions() {
        // 1..=100 uniform: interpolated ranks are exact and well known.
        let mut uniform: Vec<f64> = (1..=100).map(|v| v as f64).collect();
        assert_eq!(p50(&uniform), 50.5);
        assert_eq!(percentile(&uniform, 0.0), 1.0);
        assert_eq!(percentile(&uniform, 100.0), 100.0);
        assert!((p95(&uniform) - 95.05).abs() < 1e-9);
        assert!((p99(&uniform) - 99.01).abs() < 1e-9);
        // Order independence: a shuffled copy gives the same answers.
        uniform.reverse();
        assert_eq!(p50(&uniform), 50.5);
        assert!((p99(&uniform) - 99.01).abs() < 1e-9);

        // A single sample is every percentile.
        assert_eq!(percentile(&[7.5], 0.0), 7.5);
        assert_eq!(p50(&[7.5]), 7.5);
        assert_eq!(p99(&[7.5]), 7.5);

        // Two samples interpolate linearly.
        assert_eq!(p50(&[10.0, 20.0]), 15.0);
        assert_eq!(percentile(&[10.0, 20.0], 25.0), 12.5);

        // A heavy-tailed set: the tail percentile sits in the outlier
        // gap, the median ignores it.
        let tail = [1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1000.0];
        assert_eq!(p50(&tail), 1.0);
        assert!((percentile(&tail, 90.0) - 100.9).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "empty sample set")]
    fn percentile_rejects_empty_input() {
        let _ = percentile(&[], 50.0);
    }

    #[test]
    fn default_edge_in_range() {
        let e = default_edge();
        assert!((64..=256).contains(&e));
    }

    #[test]
    fn args_lookup() {
        let a = Args {
            raw: vec![
                "--size".into(),
                "128".into(),
                "--mode".into(),
                "nehalem".into(),
            ],
        };
        assert_eq!(a.get_usize("--size", 64), 128);
        assert_eq!(a.get_usize("--sweeps", 10), 10);
        assert_eq!(a.mode(), "nehalem");
    }
}
