//! Synchronization cost microbenchmarks: the spin barrier crossing that
//! the "pipeline w/ barrier" variant pays per block update, versus one
//! relaxed wait/complete round (Eq. 3).

use criterion::{criterion_group, criterion_main, Criterion};
use tb_sync::{PipelineSync, SpinBarrier};

fn bench_barrier(c: &mut Criterion) {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2)
        .min(4);
    c.bench_function(format!("spin_barrier_{threads}_threads"), |b| {
        b.iter_custom(|iters| {
            let barrier = SpinBarrier::new(threads);
            let start = std::time::Instant::now();
            std::thread::scope(|s| {
                for _ in 0..threads {
                    s.spawn(|| {
                        for _ in 0..iters {
                            barrier.wait();
                        }
                    });
                }
            });
            start.elapsed() / threads as u32
        });
    });
}

fn bench_relaxed(c: &mut Criterion) {
    c.bench_function("relaxed_sync_2_threads_roundtrip", |b| {
        b.iter_custom(|iters| {
            let p = PipelineSync::new(2, 2, 1, 4, 0);
            let start = std::time::Instant::now();
            std::thread::scope(|s| {
                for tid in 0..2 {
                    let p = &p;
                    s.spawn(move || {
                        for _ in 0..iters {
                            p.wait_for_turn(tid, iters + 8);
                            p.complete_block(tid);
                        }
                    });
                }
            });
            start.elapsed() / 2
        });
    });
}

criterion_group!(benches, bench_barrier, bench_relaxed);
criterion_main!(benches);
