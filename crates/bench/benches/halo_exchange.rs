//! Halo machinery microbenchmarks: face pack/unpack and a full 2-rank
//! multi-layer exchange cycle.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tb_dist::halo::{pack_region, unpack_region};
use tb_dist::{Decomposition, DistJacobi, LocalExec};
use tb_grid::{init, Dims3, Grid3, Region3};
use tb_net::{CartComm, Universe};

fn bench_pack(c: &mut Criterion) {
    let dims = Dims3::cube(96);
    let g: Grid3<f64> = init::random(dims, 1);
    let mut out: Grid3<f64> = Grid3::zeroed(dims);
    let mut group = c.benchmark_group("halo_pack");
    for h in [1usize, 4, 16] {
        let face = Region3::new([1, 1, 1], [1 + h, 95, 95]);
        group.throughput(Throughput::Bytes((face.count() * 8) as u64));
        group.bench_with_input(BenchmarkId::new("pack_x_face", h), &h, |b, _| {
            b.iter(|| pack_region(&g, &face));
        });
        let payload = pack_region(&g, &face);
        group.bench_with_input(BenchmarkId::new("unpack_x_face", h), &h, |b, _| {
            b.iter(|| unpack_region(&mut out, &face, &payload));
        });
    }
    group.finish();
}

fn bench_exchange_cycle(c: &mut Criterion) {
    let dims = Dims3::cube(64);
    let dec = Decomposition::new(dims, [2, 1, 1], 4);
    let global: Grid3<f64> = init::random(dims, 7);
    c.bench_function("dist_cycle_2ranks_h4_64cube", |b| {
        b.iter_custom(|iters| {
            let global_ref = &global;
            let dec_ref = &dec;
            let times = Universe::run(2, None, move |comm| {
                let mut cart = CartComm::new(comm, [2, 1, 1]);
                let mut s =
                    DistJacobi::from_global(dec_ref, cart.coords(), global_ref, LocalExec::Seq)
                        .unwrap();
                let t0 = std::time::Instant::now();
                for _ in 0..iters {
                    s.run_sweeps(&mut cart, 4);
                }
                t0.elapsed()
            });
            times.into_iter().max().unwrap()
        });
    });
}

criterion_group!(benches, bench_pack, bench_exchange_cycle);
criterion_main!(benches);
