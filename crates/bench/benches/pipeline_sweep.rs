//! Whole-solver comparison at bench scale: baseline vs pipelined variants
//! vs wavefront on one grid size (the Criterion companion to the fig3
//! binaries).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use tb_grid::{init, Dims3, GridPair};
use tb_stencil::config::GridScheme;
use tb_stencil::kernel::StoreMode;
use tb_stencil::{baseline, pipeline, wavefront, PipelineConfig, SyncMode};

const EDGE: usize = 66;
const SWEEPS: usize = 4;

fn cfg(sync: SyncMode) -> PipelineConfig {
    PipelineConfig {
        team_size: 2,
        n_teams: 1,
        updates_per_thread: 2,
        block: [32, 16, 16],
        sync,
        scheme: GridScheme::TwoGrid,
        layout: None,
        audit: false,
    }
}

fn bench_solvers(c: &mut Criterion) {
    let dims = Dims3::cube(EDGE);
    let initial = init::random::<f64>(dims, 1);
    let updates = (SWEEPS * dims.interior_len()) as u64;
    let mut group = c.benchmark_group("solver_4sweeps_66cube");
    group.throughput(Throughput::Elements(updates));
    group.sample_size(10);

    group.bench_function("baseline_2threads_nt", |b| {
        b.iter(|| {
            let mut pair = GridPair::from_initial(initial.clone());
            baseline::par_sweeps(&mut pair, SWEEPS, 2, StoreMode::Streaming, None)
        });
    });
    group.bench_function("pipelined_barrier", |b| {
        let c = cfg(SyncMode::Barrier);
        b.iter(|| {
            let mut pair = GridPair::from_initial(initial.clone());
            pipeline::run(&mut pair, &c, SWEEPS).unwrap()
        });
    });
    group.bench_function("pipelined_relaxed_du4", |b| {
        let c = cfg(SyncMode::relaxed_default());
        b.iter(|| {
            let mut pair = GridPair::from_initial(initial.clone());
            pipeline::run(&mut pair, &c, SWEEPS).unwrap()
        });
    });
    group.bench_function("wavefront_2threads", |b| {
        b.iter(|| {
            let mut pair = GridPair::from_initial(initial.clone());
            wavefront::run_wavefront(&mut pair, 2, SWEEPS).unwrap()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_solvers);
criterion_main!(benches);
