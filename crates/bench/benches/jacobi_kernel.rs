//! Microbenchmarks of the Jacobi row kernel (plain vs non-temporal
//! stores) and the region update used by every solver.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tb_grid::{init, Dims3, Grid3, Region3};
use tb_stencil::kernel;

fn bench_rows(c: &mut Criterion) {
    let mut g = c.benchmark_group("jacobi_row");
    for n in [128usize, 1024, 8192] {
        let cv: Vec<f64> = (0..n + 2).map(|i| i as f64 * 0.5).collect();
        let ym = vec![1.0f64; n];
        let yp = vec![2.0f64; n];
        let zm = vec![3.0f64; n];
        let zp = vec![4.0f64; n];
        let mut dst = vec![0.0f64; n];
        g.throughput(Throughput::Bytes((n * 8 * 7) as u64));
        g.bench_with_input(BenchmarkId::new("plain", n), &n, |b, _| {
            b.iter(|| kernel::jacobi_row(&mut dst, &cv, &ym, &yp, &zm, &zp));
        });
        g.bench_with_input(BenchmarkId::new("nt_store", n), &n, |b, _| {
            b.iter(|| kernel::jacobi_row_nt_f64(&mut dst, &cv, &ym, &yp, &zm, &zp));
        });
    }
    g.finish();
}

fn bench_region_update(c: &mut Criterion) {
    let dims = Dims3::cube(96);
    let src: Grid3<f64> = init::random(dims, 1);
    let mut dst: Grid3<f64> = Grid3::zeroed(dims);
    let region = Region3::interior_of(dims);
    let mut g = c.benchmark_group("update_region");
    g.throughput(Throughput::Elements(region.count() as u64));
    g.bench_function("full_interior_96", |b| {
        b.iter(|| kernel::update_region(&src, &mut dst, &region));
    });
    g.finish();
}

criterion_group!(benches, bench_rows, bench_region_update);
criterion_main!(benches);
