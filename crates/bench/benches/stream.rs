//! STREAM kernel microbenchmarks (the calibration substrate).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tb_grid::AlignedVec;
use tb_membench::kernels;

fn bench_stream(c: &mut Criterion) {
    let mut group = c.benchmark_group("stream");
    for elems in [1usize << 14, 1 << 18] {
        let a = AlignedVec::<f64>::filled(elems, 1.0);
        let b = AlignedVec::<f64>::filled(elems, 2.0);
        let mut out = AlignedVec::<f64>::zeroed(elems);
        group.throughput(Throughput::Bytes((elems * 16) as u64));
        group.bench_with_input(BenchmarkId::new("copy", elems), &elems, |bch, _| {
            bch.iter(|| kernels::copy(&a, &mut out));
        });
        group.bench_with_input(BenchmarkId::new("copy_nt", elems), &elems, |bch, _| {
            bch.iter(|| kernels::copy_nt(&a, &mut out));
        });
        group.throughput(Throughput::Bytes((elems * 24) as u64));
        group.bench_with_input(BenchmarkId::new("triad", elems), &elems, |bch, _| {
            bch.iter(|| kernels::triad(&b, &a, &mut out, 3.0));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_stream);
criterion_main!(benches);
