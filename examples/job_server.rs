//! Solver-as-a-service: stand up a [`Server`], let it slice the machine
//! along cache-group boundaries, and push a mixed tenant workload
//! through it — fixed-method jobs, tuned jobs (cold then warm), a
//! rejected burst demonstrating admission control, and a
//! priority/deadline mix under [`SchedPolicy::Deadline`] with
//! infeasible-deadline shedding.
//!
//! ```sh
//! cargo run --release --example job_server
//! ```

use std::time::Duration;

use temporal_blocking::grid::init;
use temporal_blocking::prelude::*;
use temporal_blocking::{topology, Method, TuneOptions};

fn main() {
    let machine = topology::detect::detect();
    let server = Server::new(
        &machine,
        ServerConfig {
            queue_capacity: 32,
            ..ServerConfig::default()
        },
    );
    println!("machine: {} ({})", machine.name, machine.signature());
    for s in server.slices() {
        println!(
            "  slice {}: cores {:?} → {} pinned workers, plan key {}",
            s.index, s.cores, s.threads, s.signature
        );
    }

    // A tenant mix: each job names its operator, grid, sweeps, and
    // either a fixed method or `Tuned` (the server keys the plan cache
    // by the executing slice's sub-machine, so identical slices share
    // warm plans).
    let tuned = TuneOptions {
        params: Some(MachineParams::nehalem_ep()), // skip calibration here
        top_k: 2,
        families: vec![MethodFamily::Parallel],
        ..TuneOptions::default()
    };
    let dims = Dims3::cube(24);
    let jobs = vec![
        (
            "jacobi6 / sequential",
            JobSpec::new(
                JobOp::Jacobi6,
                JobPayload::F64(init::random(dims, 1)),
                4,
                JobMethod::Fixed(Method::Sequential),
            ),
        ),
        (
            "heat step / parallel",
            JobSpec::new(
                JobOp::Jacobi7Heat(0.1),
                JobPayload::F64(init::random(dims, 2)),
                4,
                JobMethod::Fixed(Method::Parallel {
                    threads: server.slices()[0].threads,
                    streaming_stores: false,
                }),
            ),
        ),
        (
            "var-coeff / tuned (cold)",
            JobSpec::new(
                JobOp::VarCoeff7Banded,
                JobPayload::F32(init::random(dims, 3)),
                4,
                JobMethod::Tuned(tuned.clone()),
            ),
        ),
        (
            "var-coeff / tuned (warm)",
            JobSpec::new(
                JobOp::VarCoeff7Banded,
                JobPayload::F32(init::random(dims, 4)),
                4,
                JobMethod::Tuned(tuned),
            ),
        ),
    ];

    println!(
        "\n{:<26} {:>9} {:>10} {:>9}  notes",
        "job", "queue µs", "service ms", "MLUP/s"
    );
    for (label, spec) in jobs {
        let handle = server
            .submit_blocking(spec, Duration::from_secs(60))
            .expect("admitted");
        let (_, report) = handle.wait().expect("job succeeds");
        let notes = match &report.tuned {
            Some(t) if t.cache_hit => format!("warm plan: {} (0 measurements)", t.plan),
            Some(t) => format!("cold tune: {} ({} measurements)", t.plan, t.measurements),
            None => format!("verify hash {:016x}", report.verify_hash),
        };
        println!(
            "{label:<26} {:>9.0} {:>10.2} {:>9.1}  {notes}",
            report.queue_wait.as_secs_f64() * 1e6,
            report.service.as_secs_f64() * 1e3,
            report.mlups,
        );
    }

    // Admission control: a paused server's queue fills deterministically
    // and pushes back instead of buffering without bound.
    let mut paused = Server::new_paused(
        &machine,
        ServerConfig {
            queue_capacity: 2,
            ..ServerConfig::default()
        },
    );
    let burst = |seed| {
        JobSpec::new(
            JobOp::Jacobi6,
            JobPayload::F64(init::random(Dims3::cube(12), seed)),
            2,
            JobMethod::Fixed(Method::Sequential),
        )
    };
    let admitted: Vec<JobHandle> = (0..2).map(|s| paused.submit(burst(s)).unwrap()).collect();
    match paused.submit(burst(9)) {
        Err(Rejected::Full(spec)) => println!(
            "\nburst job #3 rejected (queue full at capacity 2) — spec returned, dims {}",
            spec.payload.dims()
        ),
        _ => unreachable!("capacity-2 queue must reject the third job"),
    }
    paused.start();
    for h in admitted {
        h.wait().expect("admitted burst jobs are served");
    }
    println!("admitted burst jobs served after start()");

    // Priority/deadline scheduling: an EDF server with admission
    // shedding. A Batch pile queues first; a deadline-bearing Latency
    // job submitted after it jumps the pile, while a hopeless deadline
    // is shed at the door instead of queueing doomed work.
    let edf = Server::new(
        &machine,
        ServerConfig {
            policy: SchedPolicy::Deadline,
            admission: Admission::Shed(MachineParams::nehalem_ep()),
            ..ServerConfig::default()
        },
    );
    let batch: Vec<JobHandle> = (0..6)
        .map(|s| {
            edf.submit(
                JobSpec::new(
                    JobOp::Jacobi6,
                    JobPayload::F64(init::random(Dims3::cube(28), 20 + s)),
                    8,
                    JobMethod::Fixed(Method::Sequential),
                )
                .with_priority(Priority::Batch),
            )
            .expect("batch pile admitted")
        })
        .collect();
    let urgent = edf
        .submit(
            JobSpec::new(
                JobOp::Jacobi7Heat(0.1),
                JobPayload::F64(init::random(Dims3::cube(12), 30)),
                2,
                JobMethod::Fixed(Method::Sequential),
            )
            .with_priority(Priority::Latency)
            .with_deadline(Duration::from_millis(50)),
        )
        .expect("a feasible deadline is admitted");
    match edf.submit(
        JobSpec::new(
            JobOp::Jacobi6,
            JobPayload::F64(init::random(Dims3::cube(48), 31)),
            8,
            JobMethod::Fixed(Method::Sequential),
        )
        .with_deadline(Duration::from_micros(1)),
    ) {
        Err(Rejected::Infeasible(_, floor)) => println!(
            "\ninfeasible job shed at admission: 1 µs deadline vs {:.0} µs model floor",
            floor.as_secs_f64() * 1e6
        ),
        _ => unreachable!("a 1 µs deadline on a 48³ solve cannot be feasible"),
    }
    let (_, report) = urgent.wait().expect("the urgent job succeeds");
    println!(
        "urgent job: latency {:.2} ms, deadline met: {}",
        report.latency().as_secs_f64() * 1e3,
        report.deadline_met.unwrap_or(false),
    );
    for h in batch {
        h.wait()
            .expect("batch jobs still complete (aging, no starvation)");
    }
    let stats = edf.stats();
    println!(
        "server stats: latency-class p99 {:.2} ms, batch completed {}/6, sheds {}",
        stats.class(Priority::Latency).p99_ms,
        stats.class(Priority::Batch).completed,
        stats.sheds,
    );
}
