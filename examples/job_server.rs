//! Solver-as-a-service: stand up a [`Server`], let it slice the machine
//! along cache-group boundaries, and push a mixed tenant workload
//! through it — fixed-method jobs, tuned jobs (cold then warm), and a
//! rejected burst demonstrating admission control.
//!
//! ```sh
//! cargo run --release --example job_server
//! ```

use std::time::Duration;

use temporal_blocking::grid::init;
use temporal_blocking::prelude::*;
use temporal_blocking::{topology, Method, TuneOptions};

fn main() {
    let machine = topology::detect::detect();
    let server = Server::new(
        &machine,
        ServerConfig {
            queue_capacity: 32,
            ..ServerConfig::default()
        },
    );
    println!("machine: {} ({})", machine.name, machine.signature());
    for s in server.slices() {
        println!(
            "  slice {}: cores {:?} → {} pinned workers, plan key {}",
            s.index, s.cores, s.threads, s.signature
        );
    }

    // A tenant mix: each job names its operator, grid, sweeps, and
    // either a fixed method or `Tuned` (the server keys the plan cache
    // by the executing slice's sub-machine, so identical slices share
    // warm plans).
    let tuned = TuneOptions {
        params: Some(MachineParams::nehalem_ep()), // skip calibration here
        top_k: 2,
        families: vec![MethodFamily::Parallel],
        ..TuneOptions::default()
    };
    let dims = Dims3::cube(24);
    let jobs = vec![
        (
            "jacobi6 / sequential",
            JobSpec::new(
                JobOp::Jacobi6,
                JobPayload::F64(init::random(dims, 1)),
                4,
                JobMethod::Fixed(Method::Sequential),
            ),
        ),
        (
            "heat step / parallel",
            JobSpec::new(
                JobOp::Jacobi7Heat(0.1),
                JobPayload::F64(init::random(dims, 2)),
                4,
                JobMethod::Fixed(Method::Parallel {
                    threads: server.slices()[0].threads,
                    streaming_stores: false,
                }),
            ),
        ),
        (
            "var-coeff / tuned (cold)",
            JobSpec::new(
                JobOp::VarCoeff7Banded,
                JobPayload::F32(init::random(dims, 3)),
                4,
                JobMethod::Tuned(tuned.clone()),
            ),
        ),
        (
            "var-coeff / tuned (warm)",
            JobSpec::new(
                JobOp::VarCoeff7Banded,
                JobPayload::F32(init::random(dims, 4)),
                4,
                JobMethod::Tuned(tuned),
            ),
        ),
    ];

    println!(
        "\n{:<26} {:>9} {:>10} {:>9}  notes",
        "job", "queue µs", "service ms", "MLUP/s"
    );
    for (label, spec) in jobs {
        let handle = server
            .submit_blocking(spec, Duration::from_secs(60))
            .expect("admitted");
        let (_, report) = handle.wait().expect("job succeeds");
        let notes = match &report.tuned {
            Some(t) if t.cache_hit => format!("warm plan: {} (0 measurements)", t.plan),
            Some(t) => format!("cold tune: {} ({} measurements)", t.plan, t.measurements),
            None => format!("verify hash {:016x}", report.verify_hash),
        };
        println!(
            "{label:<26} {:>9.0} {:>10.2} {:>9.1}  {notes}",
            report.queue_wait.as_secs_f64() * 1e6,
            report.service.as_secs_f64() * 1e3,
            report.mlups,
        );
    }

    // Admission control: a paused server's queue fills deterministically
    // and pushes back instead of buffering without bound.
    let mut paused = Server::new_paused(
        &machine,
        ServerConfig {
            queue_capacity: 2,
            ..ServerConfig::default()
        },
    );
    let burst = |seed| {
        JobSpec::new(
            JobOp::Jacobi6,
            JobPayload::F64(init::random(Dims3::cube(12), seed)),
            2,
            JobMethod::Fixed(Method::Sequential),
        )
    };
    let admitted: Vec<JobHandle> = (0..2).map(|s| paused.submit(burst(s)).unwrap()).collect();
    match paused.submit(burst(9)) {
        Err(Rejected::Full(spec)) => println!(
            "\nburst job #3 rejected (queue full at capacity 2) — spec returned, dims {}",
            spec.payload.dims()
        ),
        _ => unreachable!("capacity-2 queue must reject the third job"),
    }
    paused.start();
    for h in admitted {
        h.wait().expect("admitted burst jobs are served");
    }
    println!("admitted burst jobs served after start()");
}
