//! Parameter auto-tuning, the way the paper found its optimal settings
//! ("The optimal choices reported here have been obtained
//! experimentally", §1.5): sweep T, the block size and d_u for the
//! pipelined scheme, then the width for the diamond scheme, measure
//! each configuration, and report the overall winner alongside the
//! models' predictions (Eq. 5 and its diamond analogue).
//!
//! ```sh
//! cargo run --release --example autotune
//! ```

use temporal_blocking::prelude::*;
use temporal_blocking::{grid, membench, model, solve_on, Method};

fn main() {
    let dims = temporal_blocking::cube_for_memory_budget(48);
    let sweeps = 8;
    let machine = temporal_blocking::topology::detect::detect();
    let base = PipelineConfig::for_machine(&machine, 1, 1);

    // One persistent worker team for the whole tuning sweep: dozens of
    // measured solves (plus the calibration) share these pinned threads
    // instead of respawning them per configuration. Calibration needs a
    // full cache group, so grow past the pipeline layout if required.
    let layout = base
        .layout
        .clone()
        .unwrap_or_else(|| TeamLayout::new(&machine, base.team_size, base.n_teams));
    let rt = if layout.threads() >= machine.cores_per_socket() {
        Runtime::new(&layout)
    } else {
        Runtime::with_threads(base.threads().max(machine.cores_per_socket()))
    };

    println!("autotuning pipelined temporal blocking on {dims} ({sweeps} sweeps)");
    println!(
        "persistent runtime: {} pinned workers shared by every trial",
        rt.threads()
    );

    // Calibrate the host so the diagnostic model has real bandwidths —
    // on the same workers that later run the solves.
    let params = membench::calibrate_host_on(&rt, &machine, membench::CalibrationProfile::quick());
    println!(
        "calibrated: Ms,1 = {:.1} GB/s, Ms = {:.1} GB/s, Mc = {:.1} GB/s",
        params.ms1 / 1e9,
        params.ms / 1e9,
        params.mc / 1e9
    );

    let initial = grid::init::random::<f64>(dims, 1);
    let mut best: Option<(f64, String)> = None;

    println!(
        "\n{:>3} {:>16} {:>6} {:>12} {:>14}",
        "T", "block", "d_u", "MLUP/s", "model speedup"
    );
    for updates in [1usize, 2, 4] {
        for block in [[dims.nx, 16, 16], [120, 20, 20], [64, 16, 16], [32, 8, 8]] {
            for du in [1u64, 4] {
                let mut cfg = base.clone();
                cfg.updates_per_thread = updates;
                cfg.block = block;
                cfg.sync = SyncMode::Relaxed { dl: 1, du, dt: 0 };
                if cfg.validate(dims).is_err() {
                    continue;
                }
                let label = format!("T={updates} block={block:?} du={du}");
                let (_, stats) =
                    solve_on(&rt, initial.clone(), sweeps, Method::Pipelined(cfg.clone())).unwrap();
                let predicted =
                    model::pipeline_speedup(&params, cfg.team_size * cfg.n_teams, updates);
                println!(
                    "{:>3} {:>16} {:>6} {:>12.1} {:>14.2}",
                    updates,
                    format!("{:?}", block),
                    du,
                    stats.mlups(),
                    predicted
                );
                if best
                    .as_ref()
                    .map(|(m, _)| stats.mlups() > *m)
                    .unwrap_or(true)
                {
                    best = Some((stats.mlups(), label));
                }
            }
        }
    }

    // Diamond trials: two knobs now — width, and the MWD sub-team size
    // (threads per tile). Larger sub-teams mean fewer concurrent tile
    // working sets, which the model rewards with a larger cached width;
    // trial both together. The model column is the diamond Eq. 5
    // analogue for direct comparison with the pipelined predictions.
    let team = base.threads().min(rt.threads());
    println!(
        "\n{:>9} {:>6} {:>4} {:>12} {:>14}",
        "width", "team", "tpt", "MLUP/s", "model speedup"
    );
    for tpt in [1usize, 2, 4] {
        if tpt > team || team % tpt != 0 {
            continue;
        }
        let w_cache =
            model::max_cached_width_mwd::<f64, _>(&params, &Jacobi6, dims.nx, dims.ny, team, tpt);
        let mut widths = vec![4usize, 8, 16, 32, w_cache];
        widths.sort_unstable();
        widths.dedup();
        for width in widths {
            let cfg = DiamondConfig {
                threads: team,
                width,
                threads_per_tile: tpt,
                audit: false,
            };
            if cfg.validate(dims, 1).is_err() {
                continue;
            }
            let label = format!("diamond width={width} team={team} tpt={tpt}");
            let (_, stats) =
                solve_on(&rt, initial.clone(), sweeps, Method::Diamond(cfg.clone())).unwrap();
            let predicted = model::diamond_speedup(&params, width, 1);
            println!(
                "{:>9} {:>6} {:>4} {:>12.1} {:>14.2}",
                width,
                team,
                tpt,
                stats.mlups(),
                predicted
            );
            if best
                .as_ref()
                .map(|(m, _)| stats.mlups() > *m)
                .unwrap_or(true)
            {
                best = Some((stats.mlups(), label));
            }
        }
    }

    let (mlups, label) = best.expect("at least one valid configuration");
    println!("\nbest configuration: {label} at {mlups:.1} MLUP/s");
    println!("(the paper's optimum on Nehalem EP was T=2, blocks ~120x20x20, d_u in 1..4 — §1.5)");
}
