//! Plan-cache autotuning, the mechanized version of the paper's hand
//! search ("The optimal choices reported here have been obtained
//! experimentally", §1.5): enumerate every method family's candidate
//! space, score the candidates with the analytic models, measure only
//! the model-ranked top few, and persist the winner — the next run
//! replays it from the cache with zero measurements.
//!
//! ```sh
//! cargo run --release --example autotune
//! ```

use temporal_blocking::plan::{PlanCache, TuneRow};
use temporal_blocking::prelude::*;
use temporal_blocking::{grid, solve_tuned_on, tuning_runtime, TuneOptions};

fn main() {
    let dims = temporal_blocking::cube_for_memory_budget(48);
    let sweeps = 8;
    let machine = temporal_blocking::topology::detect::detect();

    // One persistent worker team for the whole tuning session: every
    // measured trial (plus the calibration, which needs a full cache
    // group) shares these workers. `tuning_runtime` grows the pinned
    // layout when needed instead of degrading to unpinned threads —
    // keeping the layout's placement and any carved-out comm core.
    let base = PipelineConfig::for_machine(&machine, 1, 1);
    let layout = base
        .layout
        .clone()
        .unwrap_or_else(|| TeamLayout::new(&machine, base.team_size, base.n_teams));
    let rt = tuning_runtime(&machine, &layout, machine.cores_per_socket());

    println!("autotuning {dims} ({sweeps} sweeps) on {}", machine.name);
    println!(
        "persistent runtime: {} pinned workers shared by every trial",
        rt.threads()
    );
    println!("plan cache: {}", PlanCache::default_path().display());

    let initial = grid::init::random::<f64>(dims, 1);
    let opts = TuneOptions::default();
    let (_, stats, tuned) = solve_tuned_on(&rt, initial.clone(), sweeps, &opts).unwrap();

    if tuned.cache_hit {
        println!("\nwarm hit: replayed cached plan with zero measurements");
        println!("plan: {}", tuned.plan.label());
        println!("solve: {:.1} MLUP/s", stats.mlups());
        println!("(delete the cache file or set force_retune to tune afresh)");
        return;
    }

    let report = tuned.report.as_ref().expect("cold tune reports");
    println!(
        "\ncold tune: {} candidates enumerated, {} measured (pruning ratio {:.2})",
        report.enumerated,
        report.measured,
        report.pruning_ratio()
    );
    if tuned.calibrated {
        println!("calibrated the host with membench (cached for next time)");
    }

    println!(
        "\n{:>44} {:>12} {:>12}",
        "candidate", "model MLUP/s", "MLUP/s"
    );
    let fmt_row = |r: &TuneRow| {
        let measured = match r.measured_mlups {
            Some(m) => format!("{m:.1}"),
            None => "pruned".to_string(),
        };
        println!(
            "{:>44} {:>12.1} {:>12}{}",
            r.plan.label(),
            r.predicted_mlups,
            measured,
            if r.incumbent { "  (default)" } else { "" }
        );
    };
    for row in &report.rows {
        fmt_row(row);
    }
    if let Some(err) = report.mean_model_error() {
        println!("\nmean model error over measured rows: {:.0}%", err * 100.0);
    }

    println!(
        "\nwinner: {} at {:.1} MLUP/s",
        tuned.plan.label(),
        stats.mlups()
    );
    if let (Some(win), Some(inc)) = (report.winner(), report.incumbent()) {
        let speedup = win.measured_mlups.unwrap_or(0.0) / inc.measured_mlups.unwrap_or(1.0);
        println!("tuned vs default ({}): {speedup:.2}x", inc.plan.label());
    }
    println!("the winner is persisted — rerun this example for a zero-measurement warm hit");
    println!("(the paper's optimum on Nehalem EP was T=2, blocks ~120x20x20, d_u in 1..4 — §1.5)");
}
