//! Quickstart: solve a 3D boundary-value problem with every solver in
//! the library and verify they agree bitwise, then compare their speed.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use temporal_blocking::prelude::*;
use temporal_blocking::{grid, solve, Method};

fn main() {
    // Pick a problem size that fits comfortably in memory.
    let dims = temporal_blocking::cube_for_memory_budget(64);
    let sweeps = 12;
    println!("Jacobi {dims} grid, {sweeps} sweeps\n");

    // Dirichlet problem: hot z=0 plate, cold interior.
    let initial = grid::init::hot_plate::<f64>(dims, 100.0, 0.0);

    // The machine we are on decides the team geometry.
    let machine = temporal_blocking::topology::detect::detect();
    let threads = machine.num_cpus().max(1);
    println!(
        "host: {} ({} CPUs, {} cache group(s))",
        machine.name,
        machine.num_cpus(),
        machine.cache_groups().len()
    );

    let mut pipe_cfg = PipelineConfig::for_machine(&machine, 1, 2);
    pipe_cfg.block = [dims.nx.min(120), 20, 20];

    let methods: Vec<(&str, Method)> = vec![
        ("sequential", Method::Sequential),
        (
            "spatially blocked",
            Method::Blocked {
                block: [dims.nx, 20, 20],
            },
        ),
        (
            "parallel baseline (NT stores)",
            Method::Parallel {
                threads,
                streaming_stores: true,
            },
        ),
        (
            "pipelined temporal blocking",
            Method::Pipelined(pipe_cfg.clone()),
        ),
        (
            "pipelined + compressed grid",
            Method::PipelinedCompressed(pipe_cfg),
        ),
        ("wavefront (comparator)", Method::Wavefront { threads }),
        (
            "wavefront-diamond blocking",
            Method::Diamond(DiamondConfig {
                threads,
                width: 16,
                threads_per_tile: 1,
                audit: false,
            }),
        ),
    ];

    let mut reference: Option<Grid3<f64>> = None;
    println!("\n{:<34} {:>12} {:>12}", "method", "MLUP/s", "time [ms]");
    for (name, method) in methods {
        match solve(initial.clone(), sweeps, method) {
            Ok((result, stats)) => {
                println!(
                    "{:<34} {:>12.1} {:>12.2}",
                    name,
                    stats.mlups(),
                    stats.elapsed.as_secs_f64() * 1e3
                );
                match &reference {
                    None => reference = Some(result),
                    Some(want) => grid::norm::assert_grids_identical(
                        want,
                        &result,
                        &Region3::whole(dims),
                        name,
                    ),
                }
            }
            Err(e) => println!("{name:<34} skipped: {e}"),
        }
    }
    println!("\nall solvers produced bitwise identical grids");
}
