//! Distributed-memory demo: run the hybrid temporally blocked Jacobi on
//! an in-process "cluster" of ranks, verify the result against the
//! serial solver bit for bit, and show a weak-scaling table.
//!
//! This exercises the full §2 machinery — overlapping decomposition,
//! multi-layer halo exchange along successive directions, per-rank
//! pipelined updates — on real data, in both the synchronous baseline
//! schedule and the §2.3 overlapped schedule with a dedicated
//! communication thread.
//!
//! ```sh
//! cargo run --release --example cluster_scaling
//! ```

use temporal_blocking::dist::{solver, Decomposition, DistJacobi, ExchangeMode, LocalExec};
use temporal_blocking::grid::{init, norm, Dims3, Grid3, Region3};
use temporal_blocking::net::{CartComm, Universe};
use temporal_blocking::prelude::*;

fn main() {
    let sweeps = 8;
    let halo = 4; // updates per exchange cycle = n*t*T of the local pipeline

    println!("hybrid distributed Jacobi, halo width h = {halo}, {sweeps} sweeps");
    println!(
        "{:>6} {:>10} {:>12} {:>14} {:>10} {:>10} {:>11} {:>10}",
        "ranks", "grid", "local", "exchange", "MLUP/s", "halo[KB]", "gather[KB]", "verified"
    );

    for (pgrid, edge) in [
        ([1usize, 1, 1], 42usize),
        ([2, 1, 1], 52),
        ([2, 2, 1], 66),
        ([2, 2, 2], 82),
    ] {
        let ranks: usize = pgrid.iter().product();
        let dims = Dims3::cube(edge);
        let global: Grid3<f64> = init::random(dims, 7);
        let want = solver::serial_reference(&global, sweeps);
        let dec = Decomposition::new(dims, pgrid, halo);

        // Each rank runs a 2-thread pipeline with T=2 => depth 4 == halo.
        let cfg = PipelineConfig {
            team_size: 2,
            n_teams: 1,
            updates_per_thread: 2,
            block: [16, 8, 8],
            sync: SyncMode::relaxed_default(),
            scheme: temporal_blocking::stencil::config::GridScheme::TwoGrid,
            layout: None,
            audit: false,
        };

        for (mode, mode_name) in [
            (ExchangeMode::Sync, "sync"),
            (ExchangeMode::OverlappedCommThread, "overlapped-ct"),
        ] {
            let global_ref = &global;
            let want_ref = &want;
            let cfg_ref = &cfg;
            let dec_ref = &dec;
            let results = Universe::run(ranks, None, move |comm| {
                let mut cart = CartComm::new(comm, pgrid);
                let mut s = DistJacobi::from_global(
                    dec_ref,
                    cart.coords(),
                    global_ref,
                    LocalExec::Pipelined(cfg_ref.clone()),
                )
                .expect("valid hybrid config")
                .with_exchange_mode(mode);
                let stats = s.run_sweeps(&mut cart, sweeps);
                let verified = match s.gather_global(&mut cart, dec_ref, global_ref) {
                    Some(got) => {
                        norm::count_mismatches(want_ref, &got, &Region3::interior_of(dims)) == 0
                    }
                    None => true,
                };
                (
                    stats.mlups(),
                    verified,
                    s.halo_bytes_sent,
                    s.gather_bytes_sent,
                )
            });

            let agg: f64 = results.iter().map(|(m, ..)| m).sum();
            let all_ok = results.iter().all(|&(_, v, ..)| v);
            let halo_kb: u64 = results.iter().map(|r| r.2).sum();
            let gather_kb: u64 = results.iter().map(|r| r.3).sum();
            println!(
                "{:>6} {:>10} {:>12} {:>14} {:>10.1} {:>10.1} {:>11.1} {:>10}",
                ranks,
                format!("{dims}"),
                format!("{:?}", pgrid),
                mode_name,
                agg,
                halo_kb as f64 / 1e3,
                gather_kb as f64 / 1e3,
                all_ok
            );
            assert!(all_ok, "distributed result diverged from serial reference");
        }
    }
    println!("\nevery configuration matched the serial solver bitwise");
}
