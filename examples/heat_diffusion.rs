//! Diffusion to steady state: a domain-specific scenario using the
//! public API — iterate a stencil operator in chunks until the solution
//! stops changing, with pipelined temporal blocking doing the work.
//!
//! Physically: a cube held at 100° on the z=0 face and 0° on the other
//! five faces; the interior relaxes towards its steady state. The
//! operator is selected on the command line, so one binary covers four
//! workloads:
//!
//! ```sh
//! cargo run --release --example heat_diffusion                       # classic Jacobi
//! cargo run --release --example heat_diffusion -- --op heat          # explicit-Euler heat step
//! cargo run --release --example heat_diffusion -- --op varcoeff      # per-cell conductivity
//! cargo run --release --example heat_diffusion -- --op avg27         # 27-point average
//! cargo run --release --example heat_diffusion -- --size 50 --tol 1e-6
//! ```

use temporal_blocking::prelude::*;
use temporal_blocking::{grid, solve_with, solve_with_on, Method};

fn arg(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn relax<Op: StencilOp<f64>>(op: &Op, rt: &Runtime, dims: Dims3, cfg: PipelineConfig, tol: f64) {
    let chunk = cfg.stages().max(4) * 2; // sweeps per convergence check
    let mut current = grid::init::hot_plate::<f64>(dims, 100.0, 0.0);
    let mut total_sweeps = 0usize;
    let mut total_updates = 0u64;
    let mut total_time = std::time::Duration::ZERO;

    println!(
        "{} diffusion on {dims}, chunk = {chunk} sweeps, tol = {tol:e}",
        op.name()
    );
    println!("{:>8} {:>14} {:>12}", "sweeps", "max |delta|", "MLUP/s");
    for _ in 0..200 {
        let before = current.clone();
        // Every chunk reuses the persistent team (and its pooled B
        // buffer) instead of spawning threads per convergence step.
        let (after, stats) = solve_with_on(rt, op, current, chunk, Method::Pipelined(cfg.clone()))
            .expect("pipeline config must be valid");
        total_sweeps += chunk;
        total_updates += stats.cell_updates;
        total_time += stats.elapsed;

        let delta = grid::norm::max_abs_diff(&before, &after, &Region3::interior_of(dims));
        println!(
            "{:>8} {:>14.3e} {:>12.1}",
            total_sweeps,
            delta,
            stats.mlups()
        );
        current = after;
        if delta < tol {
            break;
        }
    }

    // Sanity: steady state means the hot face dominates nearby cells.
    let near_hot = current.get(dims.nx / 2, dims.ny / 2, 1);
    let near_cold = current.get(dims.nx / 2, dims.ny / 2, dims.nz - 2);
    println!(
        "\nstopped after {total_sweeps} sweeps: T(center,z=1) = {near_hot:.2}, \
         T(center,z=max-1) = {near_cold:.2}"
    );
    assert!(near_hot > near_cold);

    // And the pipelined path must match the sequential oracle bitwise.
    let mut check = grid::init::hot_plate::<f64>(dims, 100.0, 0.0);
    for _ in 0..total_sweeps / chunk {
        check = solve_with(op, check, chunk, Method::Sequential).unwrap().0;
    }
    grid::norm::assert_grids_identical(
        &check,
        &current,
        &Region3::whole(dims),
        "pipelined vs sequential",
    );
    println!("verified: pipelined result is bitwise identical to the sequential oracle");

    let agg = temporal_blocking::stencil::stats::RunStats::new(total_updates, total_time);
    println!("aggregate throughput: {:.1} MLUP/s", agg.mlups());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let op_name = arg(&args, "--op").unwrap_or_else(|| "jacobi".into());
    let edge = arg(&args, "--size")
        .and_then(|v| v.parse().ok())
        .unwrap_or(66usize);
    let tol = arg(&args, "--tol")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1e-7f64);

    let dims = Dims3::cube(edge);
    let machine = temporal_blocking::topology::detect::detect();
    let mut cfg = PipelineConfig::for_machine(&machine, 1, 1);
    cfg.block = [48, 12, 12];

    // One pinned worker team for the whole relaxation.
    let layout = cfg
        .layout
        .clone()
        .unwrap_or_else(|| TeamLayout::new(&machine, cfg.team_size, cfg.n_teams));
    let rt = Runtime::new(&layout);

    match op_name.as_str() {
        "jacobi" => relax(&Jacobi6, &rt, dims, cfg, tol),
        "heat" => relax(&Jacobi7::heat(0.12), &rt, dims, cfg, tol),
        "varcoeff" => relax(&VarCoeff7::banded(dims), &rt, dims, cfg, tol),
        "avg27" => relax(&Avg27, &rt, dims, cfg, tol),
        other => {
            eprintln!("unknown --op {other}; expected jacobi | heat | varcoeff | avg27");
            std::process::exit(2);
        }
    }
}
