//! Heat diffusion to steady state: a domain-specific scenario using the
//! public API — iterate the Jacobi solver in chunks until the solution
//! stops changing, with pipelined temporal blocking doing the work.
//!
//! Physically: a cube held at 100° on the z=0 face and 0° on the other
//! five faces; the interior relaxes towards the harmonic steady state.
//! We track the residual between chunks and report the convergence
//! history.
//!
//! ```sh
//! cargo run --release --example heat_diffusion
//! ```

use temporal_blocking::prelude::*;
use temporal_blocking::{grid, solve, Method};

fn main() {
    let dims = Dims3::cube(66);
    let machine = temporal_blocking::topology::detect::detect();
    let mut cfg = PipelineConfig::for_machine(&machine, 1, 1);
    cfg.block = [48, 12, 12];

    let chunk = cfg.stages().max(4) * 2; // sweeps per convergence check
    let tol = 1e-7;

    let mut current = grid::init::hot_plate::<f64>(dims, 100.0, 0.0);
    let mut total_sweeps = 0usize;
    let mut total_updates = 0u64;
    let mut total_time = std::time::Duration::ZERO;

    println!("heat diffusion on {dims}, chunk = {chunk} sweeps, tol = {tol:e}");
    println!("{:>8} {:>14} {:>12}", "sweeps", "max |delta|", "MLUP/s");
    for _ in 0..200 {
        let before = current.clone();
        let (after, stats) = solve(current, chunk, Method::Pipelined(cfg.clone()))
            .expect("pipeline config must be valid");
        total_sweeps += chunk;
        total_updates += stats.cell_updates;
        total_time += stats.elapsed;

        let delta = grid::norm::max_abs_diff(&before, &after, &Region3::interior_of(dims));
        println!(
            "{:>8} {:>14.3e} {:>12.1}",
            total_sweeps,
            delta,
            stats.mlups()
        );
        current = after;
        if delta < tol {
            break;
        }
    }

    // Sanity: steady state means the hot face dominates nearby cells.
    let near_hot = current.get(dims.nx / 2, dims.ny / 2, 1);
    let near_cold = current.get(dims.nx / 2, dims.ny / 2, dims.nz - 2);
    println!(
        "\nstopped after {total_sweeps} sweeps: T(center,z=1) = {near_hot:.2}, \
         T(center,z=max-1) = {near_cold:.2}"
    );
    assert!(near_hot > near_cold);
    let agg = temporal_blocking::stencil::stats::RunStats::new(total_updates, total_time);
    println!("aggregate throughput: {:.1} MLUP/s", agg.mlups());
}
