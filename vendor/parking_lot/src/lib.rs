//! Minimal stand-in for the `parking_lot` crate: a non-poisoning `Mutex`
//! over `std::sync::Mutex`. See `vendor/README.md` for scope and caveats.

use std::sync::{Mutex as StdMutex, MutexGuard as StdMutexGuard};

/// Mutual exclusion lock whose `lock()` never returns a poison error: a
/// panic while holding the lock simply releases it (parking_lot
/// semantics).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

/// RAII guard; the lock is released on drop.
pub struct MutexGuard<'a, T: ?Sized>(StdMutexGuard<'a, T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self {
            inner: StdMutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.inner.lock().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn guards_exclude_each_other() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn lock_survives_panicking_holder() {
        let m = Arc::new(Mutex::new(1u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 1, "no poisoning");
    }
}
