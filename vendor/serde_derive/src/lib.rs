//! No-op `Serialize`/`Deserialize` derives for the vendored serde
//! stand-in. Nothing in this workspace serializes yet; the derives exist
//! so `#[derive(Serialize, Deserialize)]` attributes compile unchanged.
//! See `vendor/README.md`.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
