//! Minimal stand-in for the `crossbeam` crate. Only the unbounded MPSC
//! channel surface used by `tb-net` is provided, implemented over
//! `std::sync::mpsc`. See `vendor/README.md` for scope and caveats.

pub mod channel {
    use std::sync::mpsc;

    /// Sending half of an unbounded channel.
    pub struct Sender<T>(mpsc::Sender<T>);

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    /// Error returned when the peer hung up before a send completed.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned when the peer hung up with the channel empty.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Create an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive; `None` when the channel is empty.
        pub fn try_recv(&self) -> Option<T> {
            self.0.try_recv().ok()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;

    #[test]
    fn fifo_order_across_threads() {
        let (tx, rx) = unbounded::<u32>();
        let h = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        for i in 0..100 {
            assert_eq!(rx.recv().unwrap(), i);
        }
        h.join().unwrap();
        assert!(rx.recv().is_err(), "sender dropped -> RecvError");
    }

    #[test]
    fn send_to_dropped_receiver_errors() {
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert_eq!(tx.send(7), Err(SendError(7)));
    }
}
