//! Minimal stand-in for the `criterion` crate: a timing harness with the
//! same call surface (`Criterion`, groups, `iter`/`iter_custom`,
//! `criterion_group!`/`criterion_main!`) but no statistics engine, no
//! warm-up modeling and no HTML reports. Each benchmark runs for a small
//! fixed time budget and prints mean time per iteration plus throughput
//! when one was declared. See `vendor/README.md`.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Declared work per iteration, used to print a rate next to the time.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// A benchmark identifier: function name plus a parameter value.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    /// Measured mean time of one iteration, filled by `iter`/`iter_custom`.
    elapsed_per_iter: f64,
}

/// Minimum measurement window; long enough to dominate timer noise,
/// short enough that a full bench suite stays in CI budget.
const BUDGET: Duration = Duration::from_millis(200);

impl Bencher {
    /// Time `f`, running it enough times to fill the measurement budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed call to warm caches and page in code.
        black_box(f());
        let mut iters = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = t0.elapsed();
            if elapsed >= BUDGET || iters >= 1 << 40 {
                self.elapsed_per_iter = elapsed.as_secs_f64() / iters as f64;
                return;
            }
            // Aim directly for the budget next round (2x safety margin).
            let scale = (BUDGET.as_secs_f64() / elapsed.as_secs_f64().max(1e-9)).ceil() * 2.0;
            iters = (iters as f64 * scale.clamp(2.0, 1e6)) as u64;
        }
    }

    /// Like `iter`, but the closure performs and times `iters` iterations
    /// itself (for benchmarks that must exclude setup from the timing).
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut f: F) {
        let mut iters = 1u64;
        loop {
            let elapsed = f(iters);
            if elapsed >= BUDGET || iters >= 1 << 40 {
                self.elapsed_per_iter = elapsed.as_secs_f64() / iters as f64;
                return;
            }
            let scale = (BUDGET.as_secs_f64() / elapsed.as_secs_f64().max(1e-9)).ceil() * 2.0;
            iters = (iters as f64 * scale.clamp(2.0, 1e6)) as u64;
        }
    }
}

fn report(name: &str, per_iter: f64, throughput: Option<Throughput>) {
    let time = if per_iter >= 1.0 {
        format!("{per_iter:.3} s")
    } else if per_iter >= 1e-3 {
        format!("{:.3} ms", per_iter * 1e3)
    } else if per_iter >= 1e-6 {
        format!("{:.3} us", per_iter * 1e6)
    } else {
        format!("{:.1} ns", per_iter * 1e9)
    };
    let rate = match throughput {
        Some(Throughput::Bytes(b)) => {
            format!("  {:>10.1} MiB/s", b as f64 / per_iter / (1024.0 * 1024.0))
        }
        Some(Throughput::Elements(e)) => {
            format!("  {:>10.2} Melem/s", e as f64 / per_iter / 1e6)
        }
        None => String::new(),
    };
    println!("{name:<48} {time:>12}{rate}");
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion;

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl AsRef<str>, mut f: F) {
        let mut b = Bencher {
            elapsed_per_iter: 0.0,
        };
        f(&mut b);
        report(name.as_ref(), b.elapsed_per_iter, None);
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            group: name.into(),
            throughput: None,
        }
    }
}

/// A named group of related benchmarks sharing a throughput setting.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    group: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declare the work per iteration for subsequent benches.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Accepted for source compatibility; the shim sizes runs by time
    /// budget, not sample count.
    pub fn sample_size(&mut self, _n: usize) {}

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl AsRef<str>, mut f: F) {
        let mut b = Bencher {
            elapsed_per_iter: 0.0,
        };
        f(&mut b);
        report(
            &format!("{}/{}", self.group, name.as_ref()),
            b.elapsed_per_iter,
            self.throughput,
        );
    }

    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let mut b = Bencher {
            elapsed_per_iter: 0.0,
        };
        f(&mut b, input);
        report(
            &format!("{}/{}", self.group, id.name),
            b.elapsed_per_iter,
            self.throughput,
        );
    }

    pub fn finish(self) {}
}

/// Bundle benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_measures_positive_time() {
        let mut b = Bencher {
            elapsed_per_iter: 0.0,
        };
        b.iter(|| std::hint::black_box((0..1000u64).sum::<u64>()));
        assert!(b.elapsed_per_iter > 0.0);
    }

    #[test]
    fn iter_custom_uses_reported_duration() {
        let mut b = Bencher {
            elapsed_per_iter: 0.0,
        };
        b.iter_custom(|iters| Duration::from_millis(250) * iters as u32);
        assert!((b.elapsed_per_iter - 0.25).abs() < 0.01);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion;
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Bytes(8));
        g.sample_size(10);
        g.bench_with_input(BenchmarkId::new("noop", 1), &1usize, |b, &n| {
            b.iter(|| black_box(n + 1));
        });
        g.finish();
    }
}
