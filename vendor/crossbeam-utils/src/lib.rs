//! Minimal stand-in for the `crossbeam-utils` crate: `CachePadded` and
//! `Backoff`. See `vendor/README.md` for scope and caveats.

use std::ops::{Deref, DerefMut};

/// Pads and aligns a value to 128 bytes so that adjacent instances never
/// share a cache line (two lines, covering adjacent-line prefetchers).
#[derive(Debug, Default)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    pub const fn new(value: T) -> Self {
        Self { value }
    }

    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

/// Exponential backoff for spin loops: spin-hint a growing number of
/// times, then report completion so callers can switch to yielding.
pub struct Backoff {
    step: std::cell::Cell<u32>,
}

const SPIN_LIMIT: u32 = 6;
const YIELD_LIMIT: u32 = 10;

impl Backoff {
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Self {
            step: std::cell::Cell::new(0),
        }
    }

    /// Back off one step: busy-spin while cheap, then yield to the OS.
    pub fn snooze(&self) {
        let step = self.step.get();
        if step <= SPIN_LIMIT {
            for _ in 0..1u32 << step {
                std::hint::spin_loop();
            }
        } else {
            std::thread::yield_now();
        }
        if step <= YIELD_LIMIT {
            self.step.set(step + 1);
        }
    }

    /// Busy-spin only (never yields), capped at the spin limit.
    pub fn spin(&self) {
        let step = self.step.get();
        for _ in 0..1u32 << step.min(SPIN_LIMIT) {
            std::hint::spin_loop();
        }
        if step <= SPIN_LIMIT {
            self.step.set(step + 1);
        }
    }

    /// True once backing off further would not help (caller should block
    /// or yield instead).
    pub fn is_completed(&self) -> bool {
        self.step.get() > YIELD_LIMIT
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_padded_is_aligned_and_transparent() {
        let xs: Vec<CachePadded<u64>> = (0..4).map(CachePadded::new).collect();
        for (i, x) in xs.iter().enumerate() {
            assert_eq!(**x, i as u64);
            assert_eq!(x as *const _ as usize % 128, 0);
        }
        assert_eq!(CachePadded::new(5u8).into_inner(), 5);
    }

    #[test]
    fn backoff_completes_after_enough_snoozes() {
        let b = Backoff::new();
        assert!(!b.is_completed());
        for _ in 0..32 {
            b.snooze();
        }
        assert!(b.is_completed());
        let s = Backoff::new();
        for _ in 0..32 {
            s.spin();
        }
        assert!(
            !s.is_completed(),
            "spin never escalates past the spin limit"
        );
    }
}
