//! Minimal stand-in for the `proptest` crate.
//!
//! Supports the subset this workspace's property tests use:
//!
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(...)]` header,
//! * integer-range strategies (`1usize..20`), [`prop::array::uniform3`],
//!   [`prop::sample::select`], and [`any`],
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`] and
//!   [`prop_assume!`].
//!
//! Cases are generated from a deterministic per-test RNG (seeded from
//! the test name), so failures are reproducible run to run. Unlike the
//! real proptest there is **no shrinking**: a failure reports the
//! concrete inputs of the failing case instead of a minimized one. See
//! `vendor/README.md`.

use std::hash::{Hash, Hasher};

/// Run-time configuration of a [`proptest!`] block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases per test (upstream default is 256; the
    /// shim defaults lower because it cannot shrink what it finds).
    pub cases: u32,
    /// Upstream shrink-iteration cap. The shim does not shrink, so this
    /// is accepted (for source compatibility) and ignored.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 32,
            max_shrink_iters: 0,
        }
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject(String),
    /// A `prop_assert*!` failed; the test fails.
    Fail(String),
}

impl TestCaseError {
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }

    pub fn reject(msg: String) -> Self {
        TestCaseError::Reject(msg)
    }
}

/// Deterministic case-generation RNG (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from the test's name so every test has an independent,
    /// stable stream.
    pub fn from_test_name(name: &str) -> Self {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        name.hash(&mut h);
        Self {
            state: h.finish() ^ 0x9E3779B97F4A7C15,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Unbiased uniform draw in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        let zone = u64::MAX - (u64::MAX - n + 1) % n;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % n;
            }
        }
    }
}

/// A source of random values of one type.
pub trait Strategy {
    type Value: std::fmt::Debug + Clone;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: std::fmt::Debug + Clone {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

/// Strategy for any value of `A` (mirrors `proptest::arbitrary::any`).
pub struct Any<A> {
    _marker: std::marker::PhantomData<A>,
}

pub fn any<A: Arbitrary>() -> Any<A> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;

    fn sample(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

/// Combinator strategies, namespaced like upstream `proptest::prop`.
pub mod prop {
    pub mod array {
        use crate::{Strategy, TestRng};

        pub struct Uniform3<S>(S);

        /// Three independent draws from `strategy`, as an array.
        pub fn uniform3<S: Strategy>(strategy: S) -> Uniform3<S> {
            Uniform3(strategy)
        }

        impl<S: Strategy> Strategy for Uniform3<S> {
            type Value = [S::Value; 3];

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                [self.0.sample(rng), self.0.sample(rng), self.0.sample(rng)]
            }
        }
    }

    pub mod sample {
        use crate::{Strategy, TestRng};

        pub struct Select<T>(Vec<T>);

        /// Uniformly choose one of `options`.
        pub fn select<T: std::fmt::Debug + Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select needs at least one option");
            Select(options)
        }

        impl<T: std::fmt::Debug + Clone> Strategy for Select<T> {
            type Value = T;

            fn sample(&self, rng: &mut TestRng) -> T {
                self.0[rng.below(self.0.len() as u64) as usize].clone()
            }
        }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Define property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block
    )* ) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::from_test_name(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $( let $arg = $crate::Strategy::sample(&($strat), &mut rng); )*
                let inputs = {
                    let mut s = String::new();
                    $(
                        s.push_str(concat!(stringify!($arg), " = "));
                        s.push_str(&format!("{:?}, ", $arg));
                    )*
                    s
                };
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    Ok(())
                })();
                match outcome {
                    Ok(()) => {}
                    Err($crate::TestCaseError::Reject(_)) => {}
                    Err($crate::TestCaseError::Fail(msg)) => {
                        panic!("proptest case {case} failed: {msg}\n  inputs: {inputs}");
                    }
                }
            }
        }
    )*};
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if !(l == r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
}

/// Fail the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if !(l != r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Skip the current case unless `cond` holds (counts as neither pass nor
/// failure, mirroring upstream's rejection semantics without the global
/// rejection budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::reject(stringify!($cond).to_string()));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_stay_in_bounds(a in 3usize..9, b in -5i64..5) {
            prop_assert!((3..9).contains(&a));
            prop_assert!((-5..5).contains(&b));
        }

        #[test]
        fn uniform3_and_select(v in prop::array::uniform3(1usize..4), s in prop::sample::select(vec![10, 20])) {
            prop_assert!(v.iter().all(|&x| (1..4).contains(&x)));
            prop_assert!(s == 10 || s == 20);
            prop_assert_eq!(v.len(), 3);
        }

        #[test]
        fn assume_skips(n in 0u64..10, flag in any::<bool>()) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
            prop_assert_ne!(n, 7);
            let _ = flag;
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let a: Vec<u64> = {
            let mut r = crate::TestRng::from_test_name("x");
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = crate::TestRng::from_test_name("x");
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_panic_with_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig { cases: 1, ..ProptestConfig::default() })]
            fn always_fails(x in 0usize..2) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
