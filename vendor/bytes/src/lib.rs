//! Minimal stand-in for the `bytes` crate: an immutable, cheaply
//! clonable byte buffer. See `vendor/README.md` for scope and caveats.

use std::ops::Deref;
use std::sync::Arc;

/// Reference-counted immutable byte buffer. Cloning is O(1).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Self {
        Self {
            data: Arc::from(&[][..]),
        }
    }

    /// Copy `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self {
            data: Arc::from(data),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self {
            data: Arc::from(v.into_boxed_slice()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_clone_shares() {
        let b = Bytes::copy_from_slice(&[1, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(&b[..], &[1, 2, 3]);
        let c = b.clone();
        assert_eq!(c, b);
    }

    #[test]
    fn from_vec() {
        let b: Bytes = vec![9u8; 16].into();
        assert_eq!(b.len(), 16);
        assert!(b.iter().all(|&x| x == 9));
    }
}
