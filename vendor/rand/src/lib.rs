//! Minimal stand-in for the `rand` crate. Deterministic per seed, which
//! is the property the grid initializers rely on, but the stream differs
//! from upstream `rand`. See `vendor/README.md` for scope and caveats.

/// A reproducible RNG seedable from a `u64`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values an RNG can produce uniformly. `f64`/`f32` cover `[0, 1)`.
pub trait Uniform {
    fn from_u64(bits: u64) -> Self;
}

impl Uniform for f64 {
    #[inline]
    fn from_u64(bits: u64) -> f64 {
        // 53 high bits -> [0, 1) with full double precision.
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Uniform for f32 {
    #[inline]
    fn from_u64(bits: u64) -> f32 {
        (bits >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Uniform for u64 {
    #[inline]
    fn from_u64(bits: u64) -> u64 {
        bits
    }
}

impl Uniform for bool {
    #[inline]
    fn from_u64(bits: u64) -> bool {
        bits & 1 == 1
    }
}

/// The generator interface: `gen()` for uniform values, `gen_range` for
/// integer ranges.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    #[inline]
    fn gen<T: Uniform>(&mut self) -> T {
        T::from_u64(self.next_u64())
    }

    /// Uniform integer in `[range.start, range.end)` (unbiased via
    /// rejection sampling).
    fn gen_range(&mut self, range: std::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "empty range");
        let span = range.end - range.start;
        // Rejection zone keeps the draw unbiased.
        let zone = u64::MAX - (u64::MAX - span + 1) % span;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return range.start + v % span;
            }
        }
    }
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64). Statistically solid
    /// for test-data generation; not cryptographic, and not the upstream
    /// `StdRng` stream.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }
}

/// `use rand::prelude::*` convenience.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_draws_are_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: f64 = r.gen();
            assert!((0.0..1.0).contains(&v), "{v}");
        }
    }

    #[test]
    fn gen_range_respects_bounds_and_hits_all() {
        let mut r = StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let v = r.gen_range(10..15);
            assert!((10..15).contains(&v));
            seen[(v - 10) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
