//! Minimal stand-in for the `serde` crate: marker traits plus no-op
//! derive macros, so `#[derive(Serialize, Deserialize)]` compiles
//! unchanged. Nothing in this workspace serializes yet; when something
//! does, replace this shim with the real crate (the attribute surface is
//! source-compatible). See `vendor/README.md`.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (no methods in the shim).
pub trait SerializeTrait {}

/// Marker trait mirroring `serde::Deserialize` (no methods in the shim).
pub trait DeserializeTrait {}
