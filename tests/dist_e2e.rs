//! Distributed end-to-end tests spanning tb-net, tb-dist and tb-stencil.

use temporal_blocking::dist::{
    solver, Decomposition, DistJacobi, DistSolver, ExchangeMode, LocalExec,
};
use temporal_blocking::grid::{init, norm, Dims3, Grid3, Region3};
use temporal_blocking::net::{CartComm, SimNet, Universe};
use temporal_blocking::stencil::config::GridScheme;
use temporal_blocking::{Avg27, Jacobi6, Jacobi7, PipelineConfig, StencilOp, SyncMode, VarCoeff7};

fn run_and_verify(
    dims: Dims3,
    pgrid: [usize; 3],
    h: usize,
    sweeps: usize,
    exec: impl Fn() -> LocalExec + Send + Sync,
) {
    let global: Grid3<f64> = init::random(dims, 2024);
    let want = solver::serial_reference(&global, sweeps);
    let dec = Decomposition::new(dims, pgrid, h);
    let ranks = dec.ranks();
    let (global_ref, want_ref, exec_ref) = (&global, &want, &exec);
    Universe::run(ranks, None, move |comm| {
        let mut cart = CartComm::new(comm, pgrid);
        let mut s = DistJacobi::from_global(&dec, cart.coords(), global_ref, exec_ref()).unwrap();
        s.run_sweeps(&mut cart, sweeps);
        if let Some(got) = s.gather_global(&mut cart, &dec, global_ref) {
            norm::assert_grids_identical(
                want_ref,
                &got,
                &Region3::interior_of(dims),
                &format!("dist {pgrid:?} h={h}"),
            );
        }
        0
    });
}

#[test]
fn twelve_ranks_anisotropic() {
    run_and_verify(Dims3::new(26, 18, 14), [3, 2, 2], 2, 6, || LocalExec::Seq);
}

#[test]
fn deep_halo_few_ranks() {
    run_and_verify(Dims3::cube(24), [2, 1, 1], 5, 11, || LocalExec::Seq);
}

#[test]
fn hybrid_eight_ranks_pipelined() {
    let cfg = PipelineConfig {
        team_size: 2,
        n_teams: 1,
        updates_per_thread: 1,
        block: [8, 8, 8],
        sync: SyncMode::relaxed_default(),
        scheme: GridScheme::TwoGrid,
        layout: None,
        audit: true,
    };
    run_and_verify(Dims3::cube(22), [2, 2, 2], 2, 6, move || {
        LocalExec::Pipelined(cfg.clone())
    });
}

#[test]
fn virtual_time_cluster_accumulates() {
    // Virtual clocks must be monotone and identical across ranks after a
    // final barrier, with real halo data flowing.
    let dims = Dims3::cube(16);
    let pgrid = [2, 2, 1];
    let dec = Decomposition::new(dims, pgrid, 2);
    let global: Grid3<f64> = init::random(dims, 5);
    let global_ref = &global;
    let net = SimNet::qdr_infiniband();
    let times = Universe::run(4, Some(net), move |comm| {
        let mut cart = CartComm::new(comm, pgrid);
        let mut s =
            DistJacobi::from_global(&dec, cart.coords(), global_ref, LocalExec::Seq).unwrap();
        // Model compute: 1 us per sweep per rank (arbitrary, monotone).
        for _ in 0..3 {
            cart.comm.advance(1e-6);
            s.run_sweeps(&mut cart, 2);
        }
        cart.comm.barrier();
        cart.comm.time()
    });
    let t0 = times[0];
    assert!(t0 > 0.0);
    for t in times {
        assert!((t - t0).abs() < 1e-12, "clocks diverged: {t} vs {t0}");
    }
}

/// One operator through all three exchange modes: each gathered grid
/// must match the serial oracle and the sync-mode gather bitwise.
fn verify_overlap_op<Op: StencilOp<f64>>(
    op: Op,
    dims: Dims3,
    pgrid: [usize; 3],
    h: usize,
    sweeps: usize,
    exec: impl Fn() -> LocalExec + Send + Sync,
) {
    let global: Grid3<f64> = init::random(dims, 31415);
    let want = solver::serial_reference_op(&op, &global, sweeps);
    let dec = Decomposition::new(dims, pgrid, h);
    for mode in [
        ExchangeMode::Sync,
        ExchangeMode::Overlapped,
        ExchangeMode::OverlappedCommThread,
    ] {
        let (g, w, op_ref, exec_ref, dec_ref) = (&global, &want, &op, &exec, &dec);
        Universe::run(dec.ranks(), None, move |comm| {
            let mut cart = CartComm::new(comm, pgrid);
            let mut s =
                DistSolver::from_global_op(dec_ref, cart.coords(), g, exec_ref(), op_ref.clone())
                    .unwrap()
                    .with_exchange_mode(mode);
            s.run_sweeps(&mut cart, sweeps);
            if let Some(got) = s.gather_global(&mut cart, dec_ref, g) {
                norm::assert_grids_identical(
                    w,
                    &got,
                    &Region3::interior_of(dims),
                    &format!("e2e {} {mode:?} {pgrid:?} h={h}", op_ref.name()),
                );
            }
            0
        });
    }
}

#[test]
fn overlap_matrix_all_operators() {
    let dims = Dims3::new(20, 16, 14);
    verify_overlap_op(Jacobi6, dims, [2, 2, 1], 2, 5, || LocalExec::Seq);
    verify_overlap_op(Jacobi7::heat(0.11), dims, [2, 1, 2], 2, 5, || {
        LocalExec::Seq
    });
    verify_overlap_op(VarCoeff7::banded(dims), dims, [1, 2, 2], 2, 5, || {
        LocalExec::Seq
    });
    // Corner-reading operator across all eight octants: the overlapped
    // staged forwarding must deliver edge and corner ghosts exactly.
    verify_overlap_op(Avg27, Dims3::cube(18), [2, 2, 2], 2, 7, || LocalExec::Seq);
}

#[test]
fn overlap_hybrid_pipelined_twelve_ranks() {
    // The layout carries a carved-out comm core, so the comm-thread
    // mode exercises the real pinning path (best-effort on this host).
    let machine = temporal_blocking::topology::Machine::nehalem_ep();
    let layout = temporal_blocking::topology::TeamLayout::with_comm_core(&machine, 2, 1);
    assert!(layout.comm_core.is_some());
    let cfg = PipelineConfig {
        team_size: 2,
        n_teams: 1,
        updates_per_thread: 1,
        block: [8, 8, 8],
        sync: SyncMode::relaxed_default(),
        scheme: GridScheme::TwoGrid,
        layout: Some(layout),
        audit: true,
    };
    verify_overlap_op(
        Jacobi6,
        Dims3::new(26, 18, 14),
        [3, 2, 2],
        2,
        6,
        move || LocalExec::Pipelined(cfg.clone()),
    );
}

#[test]
fn overlap_hides_communication_under_the_virtual_network() {
    // Same problem, three schedules: Sync exposes the full exchange
    // cost; the overlapped schedules hide it behind the modeled interior
    // compute — and both overlapped variants agree on every clock.
    let dims = Dims3::cube(20);
    let pgrid = [2, 2, 1];
    let sweeps = 8;
    let dec = Decomposition::new(dims, pgrid, 2);
    let global: Grid3<f64> = init::random(dims, 9);
    let mut per_mode = Vec::new();
    for mode in [
        ExchangeMode::Sync,
        ExchangeMode::Overlapped,
        ExchangeMode::OverlappedCommThread,
    ] {
        let (g, dec_ref) = (&global, &dec);
        let outs = Universe::run(4, Some(SimNet::qdr_infiniband()), move |comm| {
            let mut cart = CartComm::new(comm, pgrid);
            let mut s = DistJacobi::from_global(dec_ref, cart.coords(), g, LocalExec::Seq)
                .unwrap()
                .with_exchange_mode(mode)
                .with_virtual_compute(1e8);
            s.run_sweeps(&mut cart, sweeps);
            (cart.comm.comm_seconds(), cart.comm.time())
        });
        per_mode.push(outs);
    }
    let mean = |v: &Vec<(f64, f64)>| v.iter().map(|o| o.0).sum::<f64>() / v.len() as f64;
    let (sync, over, over_ct) = (&per_mode[0], &per_mode[1], &per_mode[2]);
    assert!(mean(sync) > 0.0, "sync must expose the exchange");
    assert!(
        mean(over) < mean(sync),
        "overlap must hide communication: {} vs {}",
        mean(over),
        mean(sync)
    );
    for (a, b) in over.iter().zip(over_ct) {
        assert!(
            (a.0 - b.0).abs() < 1e-15 && (a.1 - b.1).abs() < 1e-15,
            "comm-thread scheduling must not change virtual accounting"
        );
    }
}

#[test]
fn cluster_sim_spec_runs() {
    use temporal_blocking::dist::sim::{simulate, SimSpec};
    use temporal_blocking::model::{NetworkParams, ScalingConfig, ScalingMode};
    let out = simulate(&SimSpec {
        nodes: 8,
        cfg: ScalingConfig {
            ppn: 1,
            node_lups: 2.9e9,
            halo_h: 4,
            net: NetworkParams::qdr_infiniband(),
            mode: ScalingMode::Weak,
            base_edge: 600,
        },
        exec_edge: 18,
        exec_halo: 2,
        exec_sweeps: 4,
    });
    assert!(out.verified);
    assert_eq!(out.ranks, 8);
    assert!(out.point.glups > 0.0 && out.point.efficiency <= 1.0);
}
