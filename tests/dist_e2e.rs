//! Distributed end-to-end tests spanning tb-net, tb-dist and tb-stencil.

use temporal_blocking::dist::{solver, Decomposition, DistJacobi, LocalExec};
use temporal_blocking::grid::{init, norm, Dims3, Grid3, Region3};
use temporal_blocking::net::{CartComm, SimNet, Universe};
use temporal_blocking::stencil::config::GridScheme;
use temporal_blocking::{PipelineConfig, SyncMode};

fn run_and_verify(
    dims: Dims3,
    pgrid: [usize; 3],
    h: usize,
    sweeps: usize,
    exec: impl Fn() -> LocalExec + Send + Sync,
) {
    let global: Grid3<f64> = init::random(dims, 2024);
    let want = solver::serial_reference(&global, sweeps);
    let dec = Decomposition::new(dims, pgrid, h);
    let ranks = dec.ranks();
    let (global_ref, want_ref, exec_ref) = (&global, &want, &exec);
    Universe::run(ranks, None, move |comm| {
        let mut cart = CartComm::new(comm, pgrid);
        let mut s = DistJacobi::from_global(&dec, cart.coords(), global_ref, exec_ref()).unwrap();
        s.run_sweeps(&mut cart, sweeps);
        if let Some(got) = s.gather_global(&mut cart, &dec, global_ref) {
            norm::assert_grids_identical(
                want_ref,
                &got,
                &Region3::interior_of(dims),
                &format!("dist {pgrid:?} h={h}"),
            );
        }
        0
    });
}

#[test]
fn twelve_ranks_anisotropic() {
    run_and_verify(Dims3::new(26, 18, 14), [3, 2, 2], 2, 6, || LocalExec::Seq);
}

#[test]
fn deep_halo_few_ranks() {
    run_and_verify(Dims3::cube(24), [2, 1, 1], 5, 11, || LocalExec::Seq);
}

#[test]
fn hybrid_eight_ranks_pipelined() {
    let cfg = PipelineConfig {
        team_size: 2,
        n_teams: 1,
        updates_per_thread: 1,
        block: [8, 8, 8],
        sync: SyncMode::relaxed_default(),
        scheme: GridScheme::TwoGrid,
        layout: None,
        audit: true,
    };
    run_and_verify(Dims3::cube(22), [2, 2, 2], 2, 6, move || {
        LocalExec::Pipelined(cfg.clone())
    });
}

#[test]
fn virtual_time_cluster_accumulates() {
    // Virtual clocks must be monotone and identical across ranks after a
    // final barrier, with real halo data flowing.
    let dims = Dims3::cube(16);
    let pgrid = [2, 2, 1];
    let dec = Decomposition::new(dims, pgrid, 2);
    let global: Grid3<f64> = init::random(dims, 5);
    let global_ref = &global;
    let net = SimNet::qdr_infiniband();
    let times = Universe::run(4, Some(net), move |comm| {
        let mut cart = CartComm::new(comm, pgrid);
        let mut s =
            DistJacobi::from_global(&dec, cart.coords(), global_ref, LocalExec::Seq).unwrap();
        // Model compute: 1 us per sweep per rank (arbitrary, monotone).
        for _ in 0..3 {
            cart.comm.advance(1e-6);
            s.run_sweeps(&mut cart, 2);
        }
        cart.comm.barrier();
        cart.comm.time()
    });
    let t0 = times[0];
    assert!(t0 > 0.0);
    for t in times {
        assert!((t - t0).abs() < 1e-12, "clocks diverged: {t} vs {t0}");
    }
}

#[test]
fn cluster_sim_spec_runs() {
    use temporal_blocking::dist::sim::{simulate, SimSpec};
    use temporal_blocking::model::{NetworkParams, ScalingConfig, ScalingMode};
    let out = simulate(&SimSpec {
        nodes: 8,
        cfg: ScalingConfig {
            ppn: 1,
            node_lups: 2.9e9,
            halo_h: 4,
            net: NetworkParams::qdr_infiniband(),
            mode: ScalingMode::Weak,
            base_edge: 600,
        },
        exec_edge: 18,
        exec_halo: 2,
        exec_sweeps: 4,
    });
    assert!(out.verified);
    assert_eq!(out.ranks, 8);
    assert!(out.point.glups > 0.0 && out.point.efficiency <= 1.0);
}
