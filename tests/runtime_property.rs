//! Property-based and reuse tests for the persistent worker runtime.
//!
//! The refactor's contract: executing any solver on a persistent
//! [`Runtime`] — including a *shared, oversized* runtime reused across
//! many solves — is bitwise identical to the classic per-call entry
//! points (which the long-standing suites pin to the sequential oracle),
//! and a runtime neither spawns nor leaks threads per solve.

use std::sync::OnceLock;

use proptest::prelude::*;

use temporal_blocking::grid::{init, norm, Dims3, Grid3, Region3};
use temporal_blocking::net::{CartComm, Universe};
use temporal_blocking::runtime::Runtime;
use temporal_blocking::stencil::config::GridScheme;
use temporal_blocking::{
    solve_on, solve_with, solve_with_on, Avg27, Jacobi6, Jacobi7, Method, PipelineConfig,
    StencilOp, SyncMode, VarCoeff7,
};

/// One shared runtime for every proptest case: bigger than any case
/// needs, so subset dispatch and cross-case reuse are exercised too.
fn shared_runtime() -> &'static Runtime {
    static RT: OnceLock<Runtime> = OnceLock::new();
    RT.get_or_init(|| Runtime::with_threads(8))
}

/// Live thread count of this process (Linux); `None` elsewhere.
fn thread_count() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find(|l| l.starts_with("Threads:"))?
        .split_whitespace()
        .nth(1)?
        .parse()
        .ok()
}

/// Every parallel method, on the shared persistent runtime, must equal
/// the classic entry point's result bitwise — for random geometry, team
/// shape, and operator.
fn assert_runtime_matches_classic<Op: StencilOp<f64>>(
    op: &Op,
    dims: Dims3,
    seed: u64,
    sweeps: usize,
    team_size: usize,
    n_teams: usize,
    upt: usize,
) -> Result<(), TestCaseError> {
    let initial: Grid3<f64> = init::random(dims, seed);
    let cfg = PipelineConfig {
        team_size,
        n_teams,
        updates_per_thread: upt,
        block: [8, 8, 8],
        sync: SyncMode::relaxed_default(),
        scheme: GridScheme::TwoGrid,
        layout: None,
        audit: true,
    };
    prop_assert!(cfg.validate(dims).is_ok(), "strategy must keep cfg valid");
    let threads = cfg.threads();
    let methods: Vec<(&str, Method)> = vec![
        (
            "par",
            Method::Parallel {
                threads,
                streaming_stores: false,
            },
        ),
        (
            "par-nt",
            Method::Parallel {
                threads,
                streaming_stores: true,
            },
        ),
        ("pipelined", Method::Pipelined(cfg.clone())),
        ("compressed", Method::PipelinedCompressed(cfg)),
        ("wavefront", Method::Wavefront { threads }),
    ];
    let rt = shared_runtime();
    for (name, m) in methods {
        let (classic, _) = solve_with(op, initial.clone(), sweeps, m.clone()).unwrap();
        let (on_rt, _) = solve_with_on(rt, op, initial.clone(), sweeps, m).unwrap();
        let mismatch = norm::first_mismatch(&classic, &on_rt, &Region3::whole(dims));
        prop_assert!(
            mismatch.is_none(),
            "{} via {name}: shared-runtime result diverged at {mismatch:?}",
            op.name()
        );
    }
    // And both equal the sequential oracle.
    let (oracle, _) = solve_with(op, initial.clone(), sweeps, Method::Sequential).unwrap();
    let (on_rt, _) = solve_with_on(
        rt,
        op,
        initial,
        sweeps,
        Method::Parallel {
            threads,
            streaming_stores: false,
        },
    )
    .unwrap();
    prop_assert!(
        norm::first_mismatch(&oracle, &on_rt, &Region3::whole(dims)).is_none(),
        "{}: shared-runtime result diverged from the sequential oracle",
        op.name()
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 20, ..ProptestConfig::default() })]

    /// Random dims × team shape × sweep count × operator: persistent
    /// runtime ≡ classic executors ≡ sequential oracle, bitwise.
    #[test]
    fn runtime_executors_bitwise_identical(
        nx in 10usize..22,
        ny in 10usize..22,
        nz in 10usize..22,
        seed in 0u64..1000,
        sweeps in 1usize..10,
        team_size in 1usize..3,
        n_teams in 1usize..3,
        upt in 1usize..3,
        which_op in 0usize..4,
    ) {
        let dims = Dims3::new(nx, ny, nz);
        match which_op {
            0 => assert_runtime_matches_classic(&Jacobi6, dims, seed, sweeps, team_size, n_teams, upt)?,
            1 => assert_runtime_matches_classic(&Jacobi7::heat(0.1), dims, seed, sweeps, team_size, n_teams, upt)?,
            2 => assert_runtime_matches_classic(&VarCoeff7::banded(dims), dims, seed, sweeps, team_size, n_teams, upt)?,
            _ => assert_runtime_matches_classic(&Avg27, dims, seed, sweeps, team_size, n_teams, upt)?,
        }
    }
}

/// Many solves on one runtime: deterministic results, no worker churn.
#[test]
fn many_solves_on_one_runtime_reuse_without_leaks() {
    let dims = Dims3::cube(20);
    let initial: Grid3<f64> = init::random(dims, 77);
    let sweeps = 6;
    let rt = Runtime::with_threads(3);
    let cfg = PipelineConfig {
        team_size: 3,
        n_teams: 1,
        updates_per_thread: 1,
        block: [8, 8, 8],
        sync: SyncMode::relaxed_default(),
        scheme: GridScheme::TwoGrid,
        layout: None,
        audit: false,
    };
    let methods = [
        Method::Parallel {
            threads: 3,
            streaming_stores: false,
        },
        Method::Pipelined(cfg.clone()),
        Method::PipelinedCompressed(cfg),
        Method::Wavefront { threads: 3 },
    ];

    // Warm one dispatch so worker threads exist, then pin the count.
    let (want, _) = solve_on(&rt, initial.clone(), sweeps, methods[0].clone()).unwrap();
    let baseline_threads = thread_count();

    for round in 0..10 {
        for m in &methods {
            let (got, _) = solve_on(&rt, initial.clone(), sweeps, m.clone()).unwrap();
            norm::assert_grids_identical(
                &want,
                &got,
                &Region3::whole(dims),
                &format!("round {round} via {m:?}"),
            );
        }
        assert_eq!(
            thread_count(),
            baseline_threads,
            "round {round}: solves on a shared runtime must not spawn or leak workers"
        );
    }
}

/// The distributed solver (overlapped exchange, dedicated comm worker,
/// pipelined interior) on caller-provided per-rank runtimes matches the
/// serial oracle.
#[test]
fn dist_solver_on_shared_runtimes_matches_serial() {
    use temporal_blocking::dist::solver::serial_reference;
    use temporal_blocking::dist::{Decomposition, DistJacobi, ExchangeMode, LocalExec};

    let dims = Dims3::cube(20);
    let pgrid = [2, 1, 1];
    let h = 2;
    let sweeps = 7;
    let global: Grid3<f64> = init::random(dims, 5);
    let want = serial_reference(&global, sweeps);
    let dec = Decomposition::new(dims, pgrid, h);
    let cfg = PipelineConfig {
        team_size: 2,
        n_teams: 1,
        updates_per_thread: 1,
        block: [8, 8, 8],
        sync: SyncMode::relaxed_default(),
        scheme: GridScheme::TwoGrid,
        layout: None,
        audit: false,
    };
    let (g, w, dec_ref, cfg_ref) = (&global, &want, &dec, &cfg);
    Universe::run(dec.ranks(), None, move |comm| {
        let mut cart = CartComm::new(comm, pgrid);
        // Each rank owns a persistent runtime (2 compute workers + a
        // comm worker) and runs several multi-sweep solves on it.
        let rt = Runtime::from_cpus(vec![None; 2], Some(None));
        let mut solver = DistJacobi::from_global(
            dec_ref,
            cart.coords(),
            g,
            LocalExec::Pipelined(cfg_ref.clone()),
        )
        .unwrap()
        .with_exchange_mode(ExchangeMode::OverlappedCommThread);
        // Split the sweeps over several calls: the runtime (and the
        // pooled staging grid) is reused across them.
        solver.run_sweeps_on(&rt, &mut cart, 3);
        solver.run_sweeps_on(&rt, &mut cart, sweeps - 3);
        if let Some(got) = solver.gather_global(&mut cart, dec_ref, g) {
            norm::assert_grids_identical(
                w,
                &got,
                &Region3::interior_of(dims),
                "dist on shared runtimes",
            );
        }
    });
}
