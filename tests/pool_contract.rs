//! Regression tests pinning the [`GridPool`] contract.
//!
//! Every executor that acquires staging storage from a runtime's pool
//! leans on three promises that were previously only exercised
//! implicitly through the solver suites:
//!
//! 1. **Stale contents** — a reused grid keeps the contents of its
//!    previous life; consumers must write before reading (the solver
//!    suites hold them to that bitwise), and the pool must *not* spend
//!    a zeroing pass per acquire.
//! 2. **Bounded parking, oldest evicted** — at most 8 grids wait for
//!    reuse; releasing a ninth drops the oldest parked grid, so
//!    long-running services cycling through problem shapes stay
//!    bounded.
//! 3. **Per-element-type keying** — `grid_pool::<f32>()` and
//!    `grid_pool::<f64>()` are distinct pools on the same runtime;
//!    dimensions are matched exactly within a pool.

//! 4. **Placement** — grids acquired under
//!    [`Placement::WorkerFirstTouch`] are bitwise-indistinguishable
//!    from client-placed ones (first-touch decides *where pages live*,
//!    never *what they hold*), the warm serving path allocates nothing,
//!    and restricted sub-machines report the NUMA nodes their cores
//!    actually span.

use std::sync::Arc;

use temporal_blocking::grid::{init, norm, Dims3, Grid3, Region3};
use temporal_blocking::prelude::*;
use temporal_blocking::runtime::GridPool;
use temporal_blocking::topology::NumaDomain;

/// The documented parking bound: releasing beyond it evicts the oldest.
const MAX_FREE_GRIDS: usize = 8;

#[test]
fn reused_grids_keep_stale_contents_and_fresh_ones_are_zeroed() {
    let pool: GridPool<f64> = GridPool::new();
    let mut g = pool.acquire(Dims3::cube(6));
    assert!(
        g.as_slice().iter().all(|v| *v == 0.0),
        "a fresh allocation must be zeroed"
    );
    g.set(2, 3, 4, 7.5);
    pool.release(g);

    let again = pool.acquire(Dims3::cube(6));
    assert_eq!(
        again.get(2, 3, 4),
        7.5,
        "a recycled grid must hand back its stale contents (no zeroing pass)"
    );
}

#[test]
fn row_alignment_survives_pool_reuse() {
    // The SIMD row kernels lean on AlignedVec's 64-byte guarantee; a pool
    // that handed back misaligned recycled storage would silently push
    // every row through the scalar head peel. Alignment is a property of
    // the allocation, so it must hold for fresh AND recycled grids — for
    // an x-extent that is a whole number of f64 lanes, on every row.
    use temporal_blocking::grid::lanes::LANES;
    let pool: GridPool<f64> = GridPool::new();
    let dims = Dims3::new(2 * LANES, 5, 4); // nx = two f64 lanes
    let check = |g: &Grid3<f64>, life: &str| {
        for z in 0..dims.nz {
            for y in 0..dims.ny {
                assert_eq!(
                    g.row(y, z).as_ptr() as usize % 64,
                    0,
                    "{life}: row ({y},{z}) lost 64-byte alignment"
                );
            }
        }
    };
    let g = pool.acquire(dims);
    check(&g, "fresh");
    let first_ptr = g.row(0, 0).as_ptr();
    pool.release(g);
    for round in 0..3 {
        let g = pool.acquire(dims);
        check(&g, "recycled");
        assert_eq!(
            g.row(0, 0).as_ptr(),
            first_ptr,
            "round {round}: pool reallocated instead of recycling"
        );
        pool.release(g);
    }
}

#[test]
fn oldest_parked_grid_is_evicted_at_the_bound() {
    let pool: GridPool<f64> = GridPool::new();
    // Park MAX + 2 distinguishable grids (distinct dims, marked cells).
    for k in 0..MAX_FREE_GRIDS + 2 {
        let mut g = Grid3::zeroed(Dims3::cube(3 + k));
        g.set(1, 1, 1, k as f64 + 1.0);
        pool.release(g);
    }
    assert_eq!(
        pool.free_grids(),
        MAX_FREE_GRIDS,
        "the pool must park at most {MAX_FREE_GRIDS} grids"
    );
    // The two oldest (k = 0, 1) were dropped: acquiring their dims
    // yields fresh zeroed storage and leaves the parked set alone.
    for k in 0..2 {
        let g = pool.acquire(Dims3::cube(3 + k));
        assert_eq!(
            g.get(1, 1, 1),
            0.0,
            "evicted shape {k} must come back fresh"
        );
        assert_eq!(pool.free_grids(), MAX_FREE_GRIDS);
    }
    // The newest MAX are all still there, stale marks intact, and the
    // pool drains one grid per matching acquire.
    for k in 2..MAX_FREE_GRIDS + 2 {
        let g = pool.acquire(Dims3::cube(3 + k));
        assert_eq!(g.get(1, 1, 1), k as f64 + 1.0, "shape {k} must be recycled");
    }
    assert_eq!(pool.free_grids(), 0);
}

#[test]
fn eviction_is_fifo_not_lifo() {
    let pool: GridPool<f64> = GridPool::new();
    // Fill to the bound with one shape, then overflow with another:
    // the dropped grid must be the *first* released, not the last.
    let mut first = Grid3::zeroed(Dims3::cube(4));
    first.set(1, 1, 1, 42.0);
    pool.release(first);
    for _ in 0..MAX_FREE_GRIDS - 1 {
        pool.release(Grid3::zeroed(Dims3::cube(5)));
    }
    pool.release(Grid3::zeroed(Dims3::cube(6))); // overflow
    assert_eq!(pool.free_grids(), MAX_FREE_GRIDS);
    let g = pool.acquire(Dims3::cube(4));
    assert_eq!(
        g.get(1, 1, 1),
        0.0,
        "the oldest grid (the mark) was evicted"
    );
}

#[test]
fn dims_are_matched_exactly_within_a_pool() {
    let pool: GridPool<f32> = GridPool::new();
    pool.release(Grid3::zeroed(Dims3::new(8, 4, 2)));
    // Same cell count, different shape: must not be handed out.
    let g = pool.acquire(Dims3::new(2, 4, 8));
    assert_eq!(g.dims(), Dims3::new(2, 4, 8));
    assert_eq!(pool.free_grids(), 1, "the mismatched grid stays parked");
    let h = pool.acquire(Dims3::new(8, 4, 2));
    assert_eq!(h.dims(), Dims3::new(8, 4, 2));
    assert_eq!(pool.free_grids(), 0);
}

#[test]
fn runtime_pools_are_keyed_per_element_type() {
    let rt = Runtime::with_threads(1);
    let p64 = rt.grid_pool::<f64>();
    let p32 = rt.grid_pool::<f32>();
    p64.release(Grid3::zeroed(Dims3::cube(5)));
    assert_eq!(p64.free_grids(), 1);
    assert_eq!(
        p32.free_grids(),
        0,
        "an f64 release must not surface in the f32 pool"
    );
    // Repeated lookups return the same pool object.
    assert!(Arc::ptr_eq(&p64, &rt.grid_pool::<f64>()));
    // The eviction bound applies per pool, not across types.
    for k in 0..MAX_FREE_GRIDS {
        p32.release(Grid3::zeroed(Dims3::cube(3 + k)));
    }
    assert_eq!(p32.free_grids(), MAX_FREE_GRIDS);
    assert_eq!(
        p64.free_grids(),
        1,
        "the f64 pool is untouched by f32 churn"
    );
}

#[test]
fn pooled_grids_return_on_drop_and_outlive_the_runtime() {
    let rt = Runtime::with_threads(1);
    let pool = rt.grid_pool::<f64>();
    {
        let mut p = pool.acquire_pooled(Dims3::cube(7));
        p.set(1, 2, 3, 9.0);
        assert_eq!(pool.free_grids(), 0, "a live PooledGrid is not parked");
    }
    assert_eq!(pool.free_grids(), 1, "drop returns the grid to the pool");
    // A PooledGrid may outlive the runtime that handed it out: the Arc
    // inside keeps the pool alive.
    let p = pool.acquire_pooled(Dims3::cube(7));
    drop(rt);
    assert_eq!(p.get(1, 2, 3), 9.0, "stale contents survive the runtime");
}

#[test]
fn pool_capacity_knob_rebounds_eviction_per_runtime() {
    // The 8-grid default is a policy, not a law: a long-lived server
    // slice cycling through many tenant problem shapes asks for more
    // parking via `Runtime::with_pool_capacity`, and every pool the
    // runtime creates afterwards honors the new bound — in both
    // directions, and per element type.
    for cap in [1usize, 3, MAX_FREE_GRIDS + 4] {
        let rt = Runtime::with_threads(1).with_pool_capacity(cap);
        assert_eq!(rt.pool_capacity(), cap);
        let pool = rt.grid_pool::<f64>();
        for k in 0..cap + 3 {
            pool.release(Grid3::zeroed(Dims3::cube(3 + k)));
        }
        assert_eq!(
            pool.free_grids(),
            cap,
            "capacity {cap}: overflow must evict down to the bound"
        );
        // Eviction stays FIFO under the custom bound: the 3 oldest
        // shapes are gone, the newest `cap` are recycled verbatim.
        let fresh = pool.acquire(Dims3::cube(3));
        assert!(fresh.as_slice().iter().all(|v| *v == 0.0));
        // The knob also reaches the other element type's pool.
        let p32 = rt.grid_pool::<f32>();
        for k in 0..cap + 1 {
            p32.release(Grid3::zeroed(Dims3::cube(3 + k)));
        }
        assert_eq!(p32.free_grids(), cap);
    }
    // Untouched runtimes keep the documented default.
    let rt = Runtime::with_threads(1);
    assert_eq!(rt.pool_capacity(), MAX_FREE_GRIDS);
    assert_eq!(
        temporal_blocking::runtime::DEFAULT_POOL_CAPACITY,
        MAX_FREE_GRIDS
    );
}

#[test]
fn placement_policies_produce_bitwise_identical_results() {
    // First-touch placement decides which NUMA domain a page commits
    // on — never what the page holds. Every parallel method must
    // produce the identical bit pattern under both policies, and both
    // must match the sequential oracle. Odd sweep count on purpose:
    // the result then lives in the pool-acquired (first-touched) B
    // buffer, the buffer the policies actually treat differently.
    let dims = Dims3::cube(18);
    let initial: Grid3<f64> = init::random(dims, 0xFACE);
    let sweeps = 3;
    let (oracle, _) = solve(initial.clone(), sweeps, Method::Sequential).unwrap();
    let methods = [
        Method::Parallel {
            threads: 2,
            streaming_stores: false,
        },
        Method::Wavefront { threads: 2 },
        Method::Pipelined(PipelineConfig::small()),
    ];
    for method in methods {
        let mut results = Vec::new();
        for placement in [Placement::WorkerFirstTouch, Placement::ClientPages] {
            let rt = Runtime::with_threads(2).with_placement(placement);
            let (got, _) =
                solve_with_on(&rt, &Jacobi6, initial.clone(), sweeps, method.clone()).unwrap();
            norm::assert_grids_identical(
                &oracle,
                &got,
                &Region3::whole(dims),
                &format!("{method:?} under {}", placement.name()),
            );
            results.push(got);
        }
        norm::assert_grids_identical(
            &results[0],
            &results[1],
            &Region3::whole(dims),
            &format!("{method:?}: worker-first-touch vs client-pages"),
        );
    }
}

#[test]
fn warm_serve_path_allocates_no_grids() {
    // A single-slice server (deterministic job→slice assignment) must
    // allocate only on the first job of a shape; every later job of
    // that shape runs entirely off recycled pool grids — under both
    // placements, including the op-owned coefficient grid of
    // VarCoeff7 (cached per shape in the slice loop).
    for placement in [Placement::WorkerFirstTouch, Placement::ClientPages] {
        let server = Server::new(
            &Machine::flat(2),
            // Forced so the ingest path runs even where a single NUMA
            // node would downgrade the server to zero-copy.
            ServerConfig {
                placement,
                force_placement: true,
                ..ServerConfig::default()
            },
        );
        assert_eq!(server.slices().len(), 1);
        let submit = |seed: u64| {
            let spec = JobSpec::new(
                JobOp::VarCoeff7Banded,
                JobPayload::F64(init::random(Dims3::cube(12), seed)),
                2,
                JobMethod::Fixed(Method::Parallel {
                    threads: 2,
                    streaming_stores: false,
                }),
            );
            server.submit(spec).unwrap().wait().expect("job succeeds").1
        };
        let cold = submit(1);
        assert!(
            cold.pool_fresh > 0,
            "{}: the first job of a shape must fault in pool grids",
            placement.name()
        );
        for seed in 2..5 {
            let warm = submit(seed);
            assert_eq!(
                warm.pool_fresh,
                0,
                "{}: warm job {seed} must not allocate",
                placement.name()
            );
        }
    }
}

#[test]
fn restricted_sub_machines_report_their_numa_nodes() {
    // Fallback model: no detected NUMA tree → sockets are the locality
    // domains, and restriction tracks the surviving sockets.
    let m = Machine::nehalem_ep();
    assert_eq!(m.num_numa_nodes(), 2);
    let slice = m.restrict(&[0, 1, 2, 3]);
    assert_eq!(slice.num_numa_nodes(), 1);
    assert_eq!(slice.numa_nodes()[0].cpus, vec![0, 1, 2, 3]);

    // Detected domains override the fallback and are filtered the same
    // way: a slice straddling two domains keeps both, trimmed to its
    // own cores — that count is what gates the strict placement-win
    // assertions in the benches.
    let mut detected = Machine::nehalem_ep();
    detected.numa = vec![
        NumaDomain {
            id: 0,
            cpus: vec![0, 1, 2, 3],
        },
        NumaDomain {
            id: 1,
            cpus: vec![4, 5, 6, 7],
        },
    ];
    let straddling = detected.restrict(&[2, 3, 4, 5]);
    assert_eq!(straddling.num_numa_nodes(), 2);
    assert_eq!(straddling.numa_nodes()[0].cpus, vec![2, 3]);
    assert_eq!(straddling.numa_nodes()[1].cpus, vec![4, 5]);
    // The signature (the plan-cache key) carries the node count, so
    // plans tuned on differently-sliced machines never collide.
    assert!(straddling.signature().ends_with("+n2"));
    assert!(slice.signature().ends_with("+n1"));
}
