//! Regression tests pinning the [`GridPool`] contract.
//!
//! Every executor that acquires staging storage from a runtime's pool
//! leans on three promises that were previously only exercised
//! implicitly through the solver suites:
//!
//! 1. **Stale contents** — a reused grid keeps the contents of its
//!    previous life; consumers must write before reading (the solver
//!    suites hold them to that bitwise), and the pool must *not* spend
//!    a zeroing pass per acquire.
//! 2. **Bounded parking, oldest evicted** — at most 8 grids wait for
//!    reuse; releasing a ninth drops the oldest parked grid, so
//!    long-running services cycling through problem shapes stay
//!    bounded.
//! 3. **Per-element-type keying** — `grid_pool::<f32>()` and
//!    `grid_pool::<f64>()` are distinct pools on the same runtime;
//!    dimensions are matched exactly within a pool.

use std::sync::Arc;

use temporal_blocking::grid::{Dims3, Grid3};
use temporal_blocking::runtime::{GridPool, Runtime};

/// The documented parking bound: releasing beyond it evicts the oldest.
const MAX_FREE_GRIDS: usize = 8;

#[test]
fn reused_grids_keep_stale_contents_and_fresh_ones_are_zeroed() {
    let pool: GridPool<f64> = GridPool::new();
    let mut g = pool.acquire(Dims3::cube(6));
    assert!(
        g.as_slice().iter().all(|v| *v == 0.0),
        "a fresh allocation must be zeroed"
    );
    g.set(2, 3, 4, 7.5);
    pool.release(g);

    let again = pool.acquire(Dims3::cube(6));
    assert_eq!(
        again.get(2, 3, 4),
        7.5,
        "a recycled grid must hand back its stale contents (no zeroing pass)"
    );
}

#[test]
fn row_alignment_survives_pool_reuse() {
    // The SIMD row kernels lean on AlignedVec's 64-byte guarantee; a pool
    // that handed back misaligned recycled storage would silently push
    // every row through the scalar head peel. Alignment is a property of
    // the allocation, so it must hold for fresh AND recycled grids — for
    // an x-extent that is a whole number of f64 lanes, on every row.
    use temporal_blocking::grid::lanes::LANES;
    let pool: GridPool<f64> = GridPool::new();
    let dims = Dims3::new(2 * LANES, 5, 4); // nx = two f64 lanes
    let check = |g: &Grid3<f64>, life: &str| {
        for z in 0..dims.nz {
            for y in 0..dims.ny {
                assert_eq!(
                    g.row(y, z).as_ptr() as usize % 64,
                    0,
                    "{life}: row ({y},{z}) lost 64-byte alignment"
                );
            }
        }
    };
    let g = pool.acquire(dims);
    check(&g, "fresh");
    let first_ptr = g.row(0, 0).as_ptr();
    pool.release(g);
    for round in 0..3 {
        let g = pool.acquire(dims);
        check(&g, "recycled");
        assert_eq!(
            g.row(0, 0).as_ptr(),
            first_ptr,
            "round {round}: pool reallocated instead of recycling"
        );
        pool.release(g);
    }
}

#[test]
fn oldest_parked_grid_is_evicted_at_the_bound() {
    let pool: GridPool<f64> = GridPool::new();
    // Park MAX + 2 distinguishable grids (distinct dims, marked cells).
    for k in 0..MAX_FREE_GRIDS + 2 {
        let mut g = Grid3::zeroed(Dims3::cube(3 + k));
        g.set(1, 1, 1, k as f64 + 1.0);
        pool.release(g);
    }
    assert_eq!(
        pool.free_grids(),
        MAX_FREE_GRIDS,
        "the pool must park at most {MAX_FREE_GRIDS} grids"
    );
    // The two oldest (k = 0, 1) were dropped: acquiring their dims
    // yields fresh zeroed storage and leaves the parked set alone.
    for k in 0..2 {
        let g = pool.acquire(Dims3::cube(3 + k));
        assert_eq!(
            g.get(1, 1, 1),
            0.0,
            "evicted shape {k} must come back fresh"
        );
        assert_eq!(pool.free_grids(), MAX_FREE_GRIDS);
    }
    // The newest MAX are all still there, stale marks intact, and the
    // pool drains one grid per matching acquire.
    for k in 2..MAX_FREE_GRIDS + 2 {
        let g = pool.acquire(Dims3::cube(3 + k));
        assert_eq!(g.get(1, 1, 1), k as f64 + 1.0, "shape {k} must be recycled");
    }
    assert_eq!(pool.free_grids(), 0);
}

#[test]
fn eviction_is_fifo_not_lifo() {
    let pool: GridPool<f64> = GridPool::new();
    // Fill to the bound with one shape, then overflow with another:
    // the dropped grid must be the *first* released, not the last.
    let mut first = Grid3::zeroed(Dims3::cube(4));
    first.set(1, 1, 1, 42.0);
    pool.release(first);
    for _ in 0..MAX_FREE_GRIDS - 1 {
        pool.release(Grid3::zeroed(Dims3::cube(5)));
    }
    pool.release(Grid3::zeroed(Dims3::cube(6))); // overflow
    assert_eq!(pool.free_grids(), MAX_FREE_GRIDS);
    let g = pool.acquire(Dims3::cube(4));
    assert_eq!(
        g.get(1, 1, 1),
        0.0,
        "the oldest grid (the mark) was evicted"
    );
}

#[test]
fn dims_are_matched_exactly_within_a_pool() {
    let pool: GridPool<f32> = GridPool::new();
    pool.release(Grid3::zeroed(Dims3::new(8, 4, 2)));
    // Same cell count, different shape: must not be handed out.
    let g = pool.acquire(Dims3::new(2, 4, 8));
    assert_eq!(g.dims(), Dims3::new(2, 4, 8));
    assert_eq!(pool.free_grids(), 1, "the mismatched grid stays parked");
    let h = pool.acquire(Dims3::new(8, 4, 2));
    assert_eq!(h.dims(), Dims3::new(8, 4, 2));
    assert_eq!(pool.free_grids(), 0);
}

#[test]
fn runtime_pools_are_keyed_per_element_type() {
    let rt = Runtime::with_threads(1);
    let p64 = rt.grid_pool::<f64>();
    let p32 = rt.grid_pool::<f32>();
    p64.release(Grid3::zeroed(Dims3::cube(5)));
    assert_eq!(p64.free_grids(), 1);
    assert_eq!(
        p32.free_grids(),
        0,
        "an f64 release must not surface in the f32 pool"
    );
    // Repeated lookups return the same pool object.
    assert!(Arc::ptr_eq(&p64, &rt.grid_pool::<f64>()));
    // The eviction bound applies per pool, not across types.
    for k in 0..MAX_FREE_GRIDS {
        p32.release(Grid3::zeroed(Dims3::cube(3 + k)));
    }
    assert_eq!(p32.free_grids(), MAX_FREE_GRIDS);
    assert_eq!(
        p64.free_grids(),
        1,
        "the f64 pool is untouched by f32 churn"
    );
}

#[test]
fn pooled_grids_return_on_drop_and_outlive_the_runtime() {
    let rt = Runtime::with_threads(1);
    let pool = rt.grid_pool::<f64>();
    {
        let mut p = pool.acquire_pooled(Dims3::cube(7));
        p.set(1, 2, 3, 9.0);
        assert_eq!(pool.free_grids(), 0, "a live PooledGrid is not parked");
    }
    assert_eq!(pool.free_grids(), 1, "drop returns the grid to the pool");
    // A PooledGrid may outlive the runtime that handed it out: the Arc
    // inside keeps the pool alive.
    let p = pool.acquire_pooled(Dims3::cube(7));
    drop(rt);
    assert_eq!(p.get(1, 2, 3), 9.0, "stale contents survive the runtime");
}

#[test]
fn pool_capacity_knob_rebounds_eviction_per_runtime() {
    // The 8-grid default is a policy, not a law: a long-lived server
    // slice cycling through many tenant problem shapes asks for more
    // parking via `Runtime::with_pool_capacity`, and every pool the
    // runtime creates afterwards honors the new bound — in both
    // directions, and per element type.
    for cap in [1usize, 3, MAX_FREE_GRIDS + 4] {
        let rt = Runtime::with_threads(1).with_pool_capacity(cap);
        assert_eq!(rt.pool_capacity(), cap);
        let pool = rt.grid_pool::<f64>();
        for k in 0..cap + 3 {
            pool.release(Grid3::zeroed(Dims3::cube(3 + k)));
        }
        assert_eq!(
            pool.free_grids(),
            cap,
            "capacity {cap}: overflow must evict down to the bound"
        );
        // Eviction stays FIFO under the custom bound: the 3 oldest
        // shapes are gone, the newest `cap` are recycled verbatim.
        let fresh = pool.acquire(Dims3::cube(3));
        assert!(fresh.as_slice().iter().all(|v| *v == 0.0));
        // The knob also reaches the other element type's pool.
        let p32 = rt.grid_pool::<f32>();
        for k in 0..cap + 1 {
            p32.release(Grid3::zeroed(Dims3::cube(3 + k)));
        }
        assert_eq!(p32.free_grids(), cap);
    }
    // Untouched runtimes keep the documented default.
    let rt = Runtime::with_threads(1);
    assert_eq!(rt.pool_capacity(), MAX_FREE_GRIDS);
    assert_eq!(
        temporal_blocking::runtime::DEFAULT_POOL_CAPACITY,
        MAX_FREE_GRIDS
    );
}
