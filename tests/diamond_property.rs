//! Property-based verification of wavefront-diamond temporal blocking.
//!
//! The scheme's contract: for any geometry, team size, diamond width,
//! sweep count and operator, the diamond executor — on a shared
//! persistent runtime *and* through the one-shot classic wrappers —
//! produces grids **bitwise identical** to the plain parallel baseline
//! and to the operator's sequential oracle. A distributed section holds
//! `LocalExec::Diamond` (including the overlapped trapezoid drive) to
//! the same standard.

use std::sync::OnceLock;

use proptest::prelude::*;

use temporal_blocking::dist::{solver, Decomposition, DistSolver, ExchangeMode, LocalExec};
use temporal_blocking::grid::{init, norm, Dims3, Grid3, Region3};
use temporal_blocking::net::{CartComm, Universe};
use temporal_blocking::runtime::Runtime;
use temporal_blocking::{
    solve_with, solve_with_on, Avg27, DiamondConfig, Jacobi6, Jacobi7, Method, StencilOp, VarCoeff7,
};

/// One shared, oversized runtime for every proptest case: subset
/// dispatch and cross-case reuse are part of the property.
fn shared_runtime() -> &'static Runtime {
    static RT: OnceLock<Runtime> = OnceLock::new();
    RT.get_or_init(|| Runtime::with_threads(6))
}

fn assert_diamond_matches_everything<Op: StencilOp<f64>>(
    op: &Op,
    dims: Dims3,
    seed: u64,
    sweeps: usize,
    threads: usize,
    width: usize,
    threads_per_tile: usize,
) -> Result<(), TestCaseError> {
    let initial: Grid3<f64> = init::random(dims, seed);
    let cfg = DiamondConfig {
        threads,
        width,
        threads_per_tile,
        audit: true,
    };
    let method = Method::Diamond(cfg);

    // Sequential oracle and the standard parallel baseline.
    let (oracle, _) = solve_with(op, initial.clone(), sweeps, Method::Sequential).unwrap();
    let (baseline, _) = solve_with(
        op,
        initial.clone(),
        sweeps,
        Method::Parallel {
            threads,
            streaming_stores: false,
        },
    )
    .unwrap();
    prop_assert!(
        norm::first_mismatch(&oracle, &baseline, &Region3::whole(dims)).is_none(),
        "baseline diverged from oracle (pre-existing bug)"
    );

    // Diamond through the classic one-shot wrapper...
    let (classic, stats) = solve_with(op, initial.clone(), sweeps, method.clone()).unwrap();
    let mismatch = norm::first_mismatch(&oracle, &classic, &Region3::whole(dims));
    prop_assert!(
        mismatch.is_none(),
        "{} diamond t={threads} w={width} sweeps={sweeps}: classic run diverged at {mismatch:?}",
        op.name()
    );
    // Diamond must update every interior cell exactly once per sweep.
    prop_assert_eq!(stats.cell_updates, (sweeps * dims.interior_len()) as u64);

    // ...and on the shared persistent runtime.
    let (on_rt, _) = solve_with_on(shared_runtime(), op, initial, sweeps, method).unwrap();
    let mismatch = norm::first_mismatch(&oracle, &on_rt, &Region3::whole(dims));
    prop_assert!(
        mismatch.is_none(),
        "{} diamond t={threads} w={width}: shared-runtime run diverged at {mismatch:?}",
        op.name()
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Random dims × team size × width × sweeps × operator:
    /// diamond ≡ parallel baseline ≡ sequential oracle, bitwise, on
    /// both the shared runtime and the one-shot wrappers.
    #[test]
    fn diamond_bitwise_identical_to_baseline_and_oracle(
        nx in 8usize..24,
        ny in 8usize..24,
        nz in 8usize..24,
        seed in 0u64..1000,
        sweeps in 1usize..11,
        threads in 1usize..5,
        width in 2usize..17,
        tpt_pick in 0usize..8,
        which_op in 0usize..4,
    ) {
        let dims = Dims3::new(nx, ny, nz);
        // Random MWD sub-team size: any divisor of the team size.
        let divisors: Vec<usize> = (1..=threads).filter(|d| threads % d == 0).collect();
        let tpt = divisors[tpt_pick % divisors.len()];
        match which_op {
            0 => assert_diamond_matches_everything(
                &Jacobi6, dims, seed, sweeps, threads, width, tpt)?,
            1 => assert_diamond_matches_everything(
                &Jacobi7::heat(0.11), dims, seed, sweeps, threads, width, tpt)?,
            2 => assert_diamond_matches_everything(
                &VarCoeff7::banded(dims), dims, seed, sweeps, threads, width, tpt)?,
            _ => assert_diamond_matches_everything(
                &Avg27, dims, seed, sweeps, threads, width, tpt)?,
        }
    }

    /// Distributed ranks advancing with `LocalExec::Diamond` gather the
    /// exact serial-oracle grid, in the synchronous and the overlapped
    /// exchange schedule, for random geometry and cycle structure.
    #[test]
    fn dist_diamond_matches_serial_oracle(
        edge in 12usize..20,
        seed in 0u64..1000,
        sweeps in 1usize..9,
        h in 1usize..4,
        width in 2usize..9,
        axis in 0usize..3,
        overlapped in proptest::any::<bool>(),
    ) {
        let dims = Dims3::cube(edge);
        let mut pgrid = [1usize, 1, 1];
        pgrid[axis] = 2;
        let global: Grid3<f64> = init::random(dims, seed);
        let want = solver::serial_reference(&global, sweeps);
        let dec = Decomposition::new(dims, pgrid, h);
        let mode = if overlapped { ExchangeMode::Overlapped } else { ExchangeMode::Sync };
        let cfg = DiamondConfig { threads: 2, width, threads_per_tile: 1, audit: true };
        let (g, w, cfg_ref, dec_ref) = (&global, &want, &cfg, &dec);
        let ok = Universe::run(dec.ranks(), None, move |comm| {
            let mut cart = CartComm::new(comm, pgrid);
            let mut s = solver::DistSolver::from_global_op(
                dec_ref,
                cart.coords(),
                g,
                LocalExec::Diamond(cfg_ref.clone()),
                Jacobi6,
            )
            .unwrap()
            .with_exchange_mode(mode);
            s.run_sweeps(&mut cart, sweeps);
            match s.gather_global(&mut cart, dec_ref, g) {
                Some(got) => {
                    norm::first_mismatch(w, &got, &Region3::interior_of(dims)).is_none()
                }
                None => true,
            }
        });
        prop_assert!(
            ok.iter().all(|v| *v),
            "dist diamond {pgrid:?} h={h} w={width} {mode:?} diverged from the serial oracle"
        );
    }
}

/// A fixed non-proptest case pinning the 8-rank corner-forwarding path
/// with a corner-reading operator under `LocalExec::Diamond`.
#[test]
fn eight_rank_diamond_avg27_matches_serial() {
    let dims = Dims3::new(18, 16, 14);
    let pgrid = [2, 2, 2];
    let sweeps = 5;
    let global: Grid3<f64> = init::random(dims, 4711);
    let want = solver::serial_reference_op(&Avg27, &global, sweeps);
    let dec = Decomposition::new(dims, pgrid, 2);
    let cfg = DiamondConfig {
        threads: 2,
        width: 4,
        threads_per_tile: 2, // corner-reading op + MWD + corner forwarding
        audit: true,
    };
    for mode in [ExchangeMode::Sync, ExchangeMode::OverlappedCommThread] {
        let (g, w, cfg_ref, dec_ref) = (&global, &want, &cfg, &dec);
        Universe::run(dec.ranks(), None, move |comm| {
            let mut cart = CartComm::new(comm, pgrid);
            let mut s = DistSolver::from_global_op(
                dec_ref,
                cart.coords(),
                g,
                LocalExec::Diamond(cfg_ref.clone()),
                Avg27,
            )
            .unwrap()
            .with_exchange_mode(mode);
            s.run_sweeps(&mut cart, sweeps);
            if let Some(got) = s.gather_global(&mut cart, dec_ref, g) {
                norm::assert_grids_identical(
                    w,
                    &got,
                    &Region3::interior_of(dims),
                    &format!("8-rank diamond avg27 {mode:?}"),
                );
            }
        });
    }
}

/// Solving repeatedly on one runtime must not churn threads or grow the
/// staging pool — the diamond path reuses the pooled B buffer.
#[test]
fn repeated_diamond_solves_reuse_the_pool() {
    let dims = Dims3::cube(18);
    let initial: Grid3<f64> = init::random(dims, 9);
    let rt = Runtime::with_threads(2);
    let method = Method::Diamond(DiamondConfig::with_width(2, 6));
    let (want, _) = solve_with(&Jacobi6, initial.clone(), 5, method.clone()).unwrap();
    for round in 0..8 {
        let (got, _) = solve_with_on(&rt, &Jacobi6, initial.clone(), 5, method.clone()).unwrap();
        norm::assert_grids_identical(
            &want,
            &got,
            &Region3::whole(dims),
            &format!("diamond pool reuse round {round}"),
        );
    }
    assert!(
        rt.grid_pool::<f64>().free_grids() <= 1,
        "repeated diamond solves must recycle one B buffer, not allocate per solve"
    );
}
