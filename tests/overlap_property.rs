//! Property tests for the overlapped exchange schedule: for random
//! dims, rank grids, operators, halo widths and sweep counts, the
//! overlapped modes must gather grids bitwise identical to the
//! synchronous schedule and to the serial oracle.

use proptest::prelude::*;

use temporal_blocking::dist::{solver, Decomposition, DistSolver, ExchangeMode, LocalExec};
use temporal_blocking::grid::{init, norm, Dims3, Grid3, Region3};
use temporal_blocking::net::{CartComm, Universe};
use temporal_blocking::{Avg27, Jacobi6, Jacobi7, StencilOp, VarCoeff7};

/// Gather the distributed result of one (mode, exec) run on rank 0.
fn gather<Op: StencilOp<f64>>(
    op: &Op,
    global: &Grid3<f64>,
    dec: &Decomposition,
    pgrid: [usize; 3],
    mode: ExchangeMode,
    sweeps: usize,
) -> Grid3<f64> {
    let results = Universe::run(dec.ranks(), None, move |comm| {
        let mut cart = CartComm::new(comm, pgrid);
        let mut s =
            DistSolver::from_global_op(dec, cart.coords(), global, LocalExec::Seq, op.clone())
                .expect("valid decomposition")
                .with_exchange_mode(mode);
        s.run_sweeps(&mut cart, sweeps);
        s.gather_global(&mut cart, dec, global)
    });
    results
        .into_iter()
        .flatten()
        .next()
        .expect("rank 0 gathers")
}

fn check_op<Op: StencilOp<f64>>(
    op: Op,
    seed: u64,
    dims: Dims3,
    pgrid: [usize; 3],
    h: usize,
    sweeps: usize,
    comm_thread: bool,
) -> Result<(), TestCaseError> {
    let global: Grid3<f64> = init::random(dims, seed);
    let want = solver::serial_reference_op(&op, &global, sweeps);
    let dec = Decomposition::new(dims, pgrid, h);
    let interior = Region3::interior_of(dims);
    let overlapped_mode = if comm_thread {
        ExchangeMode::OverlappedCommThread
    } else {
        ExchangeMode::Overlapped
    };
    let sync = gather(&op, &global, &dec, pgrid, ExchangeMode::Sync, sweeps);
    let over = gather(&op, &global, &dec, pgrid, overlapped_mode, sweeps);
    let vs_oracle = norm::first_mismatch(&want, &over, &interior);
    prop_assert!(
        vs_oracle.is_none(),
        "{} {overlapped_mode:?} {pgrid:?} h={h} s={sweeps} diverged from the oracle at {vs_oracle:?}",
        op.name()
    );
    let vs_sync = norm::first_mismatch(&sync, &over, &interior);
    prop_assert!(
        vs_sync.is_none(),
        "{} {overlapped_mode:?} {pgrid:?} h={h} s={sweeps} diverged from Sync at {vs_sync:?}",
        op.name()
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    /// Overlapped == Sync == serial oracle, bitwise, for random
    /// geometry, operator, halo width, sweep count and comm-thread use.
    #[test]
    fn overlapped_bitwise_matches_sync_and_oracle(
        seed in 0u64..1000,
        nx in 12usize..20,
        ny in 12usize..20,
        nz in 12usize..20,
        pgrid in prop::sample::select(vec![
            [1usize, 1, 1], [2, 1, 1], [1, 2, 1], [1, 1, 2],
            [2, 2, 1], [2, 1, 2], [1, 2, 2],
        ]),
        op_idx in 0usize..4,
        h in 1usize..4,
        sweeps in 1usize..9,
        comm_thread in any::<bool>(),
    ) {
        let dims = Dims3::new(nx, ny, nz);
        match op_idx {
            0 => check_op(Jacobi6, seed, dims, pgrid, h, sweeps, comm_thread)?,
            1 => check_op(Jacobi7::heat(0.07), seed, dims, pgrid, h, sweeps, comm_thread)?,
            2 => check_op(VarCoeff7::banded(dims), seed, dims, pgrid, h, sweeps, comm_thread)?,
            _ => check_op(Avg27, seed, dims, pgrid, h, sweeps, comm_thread)?,
        }
    }

    /// The core/shell split partitions the owned box for every geometry
    /// the decomposition accepts.
    #[test]
    fn core_and_shells_always_partition(
        nx in 10usize..26,
        ny in 10usize..26,
        nz in 10usize..26,
        pgrid in prop::sample::select(vec![
            [2usize, 1, 1], [2, 2, 1], [2, 2, 2], [3, 1, 1],
        ]),
        h in 1usize..4,
        depth in 1usize..5,
    ) {
        let dims = Dims3::new(nx, ny, nz);
        prop_assume!((0..3).all(|d| dims.as_array()[d] / pgrid[d] >= h.max(pgrid[d].min(2))));
        let dec = match Decomposition::try_new(dims, pgrid, h) {
            Ok(d) => d,
            Err(_) => return Ok(()),
        };
        for r in 0..dec.ranks() {
            let l = dec.local(dec.coords_of(r));
            let core = l.interior_core(depth);
            let shells = l.boundary_shells(depth);
            let covered: usize =
                core.count() + shells.iter().map(Region3::count).sum::<usize>();
            prop_assert_eq!(covered, l.owned_local().count());
            for (i, s) in shells.iter().enumerate() {
                prop_assert!(!s.intersects(&core));
                for s2 in &shells[..i] {
                    prop_assert!(!s.intersects(s2));
                }
            }
        }
    }
}
