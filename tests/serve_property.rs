//! Contract of the multi-tenant solve server (`temporal_blocking::serve`):
//!
//! 1. **Isolation is bitwise** — K jobs running concurrently on disjoint
//!    core-set slices return exactly the grids the sequential oracle
//!    produces one at a time. Randomized over operators, dims, element
//!    types, methods, sweep counts and slice counts.
//! 2. **Admission control is deterministic** — a full bounded queue
//!    rejects with the spec returned to the caller; the blocking form
//!    really waits out its deadline; everything admitted is served.
//! 3. **Failures don't spread** — a job that panics fails its own
//!    handle; every other job (including ones submitted afterwards)
//!    completes and verifies, on every slice.
//! 4. **Warm plans transfer** — a tuned job repeated on the same server
//!    replays the cached plan with zero measurements.
//! 5. **Ingest/egress round-trips bitwise** — the worker-first-touch
//!    ingest copy (payload → slice-local grid) and egress copy (result
//!    → client grid) are invisible in the result: every operator and
//!    element type returns the exact oracle bits under both placement
//!    policies, and client-pages jobs report zero copy time.
//! 6. **The deadline policy keeps its promises** — on synthetic traces
//!    through [`deadline_pick`]: EDF meets every deadline FIFO meets
//!    (Jackson's rule — it minimizes maximum lateness), aging bounds
//!    how long a `Batch` job waits under a continuous urgent stream,
//!    cancelled jobs never execute, and `Rejected::Infeasible` jobs
//!    really would have missed their deadline.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use proptest::prelude::*;
use temporal_blocking::grid::{init, norm, Dims3, Grid3, Region3};
use temporal_blocking::prelude::*;
use temporal_blocking::serve::{deadline_pick, SchedFacts};
use temporal_blocking::topology::Machine;
use temporal_blocking::{solve_with, Method, TuneOptions};

/// A fixed method that fits a 2-core slice.
fn method_for(kind: u8) -> Method {
    match kind % 4 {
        0 => Method::Sequential,
        1 => Method::Parallel {
            threads: 1,
            streaming_stores: false,
        },
        2 => Method::Parallel {
            threads: 2,
            streaming_stores: true,
        },
        _ => Method::Wavefront { threads: 2 },
    }
}

fn op_pool() -> Vec<JobOp> {
    vec![
        JobOp::Jacobi6,
        JobOp::Jacobi7Heat(0.1),
        JobOp::VarCoeff7Banded,
        JobOp::Avg27,
    ]
}

/// The sequential oracle for a spec, run completely outside the server.
fn oracle(op: JobOp, payload: &JobPayload, sweeps: usize) -> JobPayload {
    fn run<T: temporal_blocking::grid::Real>(op: JobOp, g: Grid3<T>, sweeps: usize) -> Grid3<T> {
        match op {
            JobOp::Jacobi6 => solve_with(&Jacobi6, g, sweeps, Method::Sequential),
            JobOp::Jacobi7Heat(k) => solve_with(&Jacobi7::heat(k), g, sweeps, Method::Sequential),
            JobOp::VarCoeff7Banded => {
                let dims = g.dims();
                solve_with(&VarCoeff7::<T>::banded(dims), g, sweeps, Method::Sequential)
            }
            _ => solve_with(&Avg27, g, sweeps, Method::Sequential),
        }
        .unwrap()
        .0
    }
    match payload {
        JobPayload::F64(g) => JobPayload::F64(run(op, g.clone(), sweeps)),
        JobPayload::F32(g) => JobPayload::F32(run(op, g.clone(), sweeps)),
    }
}

fn assert_payload_identical(want: &JobPayload, got: &JobPayload, ctx: &str) {
    match (want, got) {
        (JobPayload::F64(a), JobPayload::F64(b)) => {
            norm::assert_grids_identical(a, b, &Region3::whole(a.dims()), ctx)
        }
        (JobPayload::F32(a), JobPayload::F32(b)) => {
            norm::assert_grids_identical(a, b, &Region3::whole(a.dims()), ctx)
        }
        _ => panic!("{ctx}: element type changed in flight"),
    }
}

/// Deterministic per-job parameter stream (the vendored proptest has no
/// collection strategies, so jobs derive from one drawn master seed).
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Run a single-server trace in the given static order; returns each
/// job's lateness in seconds (negative = early) for jobs released
/// simultaneously at `t0` with the given service times and deadlines.
fn lateness_in_order(order: &[usize], service: &[Duration], deadline: &[Duration]) -> Vec<f64> {
    let mut done = Duration::ZERO;
    let mut lateness = vec![0.0; service.len()];
    for &j in order {
        done += service[j];
        lateness[j] = done.as_secs_f64() - deadline[j].as_secs_f64();
    }
    lateness
}

/// The order `deadline_pick` serves a simultaneously-released queue in.
fn edf_order(facts: &[SchedFacts], aging: Duration) -> Vec<usize> {
    let mut remaining: Vec<(usize, SchedFacts)> = facts.iter().copied().enumerate().collect();
    let mut order = Vec::with_capacity(facts.len());
    while !remaining.is_empty() {
        let queue: Vec<SchedFacts> = remaining.iter().map(|(_, f)| *f).collect();
        let picked = deadline_pick(&queue, aging);
        order.push(remaining.remove(picked).0);
    }
    order
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    /// K concurrent jobs on disjoint slices == K serial oracle runs,
    /// bitwise, with the verify hash agreeing in every case.
    #[test]
    fn concurrent_jobs_on_disjoint_slices_match_serial_runs_bitwise(
        slices in 1usize..4,
        njobs in 3usize..8,
        master in any::<u64>(),
    ) {
        // Two cores per slice so every method in `method_for` fits.
        let machine = Machine::flat(2 * slices);
        let server = Server::new(&machine, ServerConfig {
            slices: SlicePolicy::Fixed(slices),
            ..ServerConfig::default()
        });
        prop_assert_eq!(server.slices().len(), slices);

        let ops = op_pool();
        let mut rng = master;
        let specs: Vec<JobSpec> = (0..njobs)
            .map(|_| {
                let op = ops[(splitmix(&mut rng) % 4) as usize];
                let dims = Dims3::cube(8 + (splitmix(&mut rng) % 9) as usize); // 8..=16
                let sweeps = 1 + (splitmix(&mut rng) % 4) as usize;            // 1..=4
                let kind = splitmix(&mut rng) as u8;
                let seed = splitmix(&mut rng);
                let payload = if splitmix(&mut rng) & 1 == 1 {
                    JobPayload::F32(init::random(dims, seed))
                } else {
                    JobPayload::F64(init::random(dims, seed))
                };
                JobSpec::new(op, payload, sweeps, JobMethod::Fixed(method_for(kind)))
            })
            .collect();

        // Submit everything up front: the slices race over the queue.
        let handles: Vec<JobHandle> = specs
            .iter()
            .map(|s| {
                server
                    .submit_blocking(s.clone(), Duration::from_secs(60))
                    .expect("queue capacity outlasts the test")
            })
            .collect();

        for (spec, handle) in specs.into_iter().zip(handles) {
            let (got, report) = handle.wait().expect("job must succeed");
            let want = oracle(spec.op, &spec.payload, spec.sweeps);
            assert_payload_identical(&want, &got, spec.op.name());
            prop_assert_eq!(report.verify_hash, want.fingerprint());
            prop_assert!(report.slice < slices);
            prop_assert_eq!(report.dims, spec.payload.dims());
        }
    }

    /// The ingest/egress stage is a pure page-relocation: for all four
    /// operators, both element types and both placement policies, the
    /// served grid is bitwise the oracle's, and the copy accounting
    /// matches the policy (client-pages never copies).
    #[test]
    fn ingest_egress_round_trips_every_operator_bitwise(master in any::<u64>()) {
        for placement in [Placement::WorkerFirstTouch, Placement::ClientPages] {
            // force_placement: the copy path must be exercised even on
            // hosts where a single NUMA node would downgrade the server
            // to zero-copy.
            let server = Server::new(&Machine::flat(2), ServerConfig {
                placement,
                force_placement: true,
                ..ServerConfig::default()
            });
            let mut rng = master;
            for op in op_pool() {
                let dims = Dims3::cube(8 + (splitmix(&mut rng) % 7) as usize); // 8..=14
                let sweeps = 1 + (splitmix(&mut rng) % 3) as usize;            // 1..=3
                let seed = splitmix(&mut rng);
                let payload = if splitmix(&mut rng) & 1 == 1 {
                    JobPayload::F32(init::random(dims, seed))
                } else {
                    JobPayload::F64(init::random(dims, seed))
                };
                let method = JobMethod::Fixed(method_for(splitmix(&mut rng) as u8));
                let spec = JobSpec::new(op, payload.clone(), sweeps, method);
                let (got, report) = server
                    .submit_blocking(spec, Duration::from_secs(60))
                    .expect("admitted")
                    .wait()
                    .expect("job must succeed");
                let want = oracle(op, &payload, sweeps);
                let ctx = format!("{} under {}", op.name(), placement.name());
                assert_payload_identical(&want, &got, &ctx);
                prop_assert!(report.verify_hash == want.fingerprint(), "hash: {ctx}");
                if placement == Placement::ClientPages {
                    prop_assert!(report.ingest == Duration::ZERO, "ingest: {ctx}");
                    prop_assert!(report.egress == Duration::ZERO, "egress: {ctx}");
                }
            }
        }
    }

    /// Jackson's rule on random traces: for a single server and
    /// simultaneous release, EDF minimizes maximum lateness — so
    /// whenever the FIFO order meets *every* deadline, the
    /// `deadline_pick` order does too, and its worst lateness never
    /// exceeds FIFO's. (The pointwise claim — EDF meets every deadline
    /// FIFO meets, job by job — is false in general; max lateness is
    /// the honest guarantee.)
    #[test]
    fn deadline_edf_never_misses_when_fifo_meets_all(
        njobs in 2usize..12,
        master in any::<u64>(),
    ) {
        let t0 = Instant::now();
        let mut rng = master;
        let mut service = Vec::with_capacity(njobs);
        let mut deadline = Vec::with_capacity(njobs);
        let mut facts = Vec::with_capacity(njobs);
        for _ in 0..njobs {
            // Service 1..=20 ms; deadlines anywhere from tight to lax.
            let s = Duration::from_millis(1 + splitmix(&mut rng) % 20);
            let d = Duration::from_millis(1 + splitmix(&mut rng) % 200);
            service.push(s);
            deadline.push(d);
            facts.push(SchedFacts {
                priority: Priority::Latency,
                deadline: Some(t0 + d),
                submitted: t0,
            });
        }
        let aging = Duration::from_millis(10);
        let fifo: Vec<usize> = (0..njobs).collect();
        let edf = edf_order(&facts, aging);
        let max = |l: &[f64]| l.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let fifo_late = lateness_in_order(&fifo, &service, &deadline);
        let edf_late = lateness_in_order(&edf, &service, &deadline);
        prop_assert!(
            max(&edf_late) <= max(&fifo_late) + 1e-12,
            "EDF max lateness {} > FIFO's {}",
            max(&edf_late),
            max(&fifo_late)
        );
        if max(&fifo_late) <= 0.0 {
            prop_assert!(
                edf_late.iter().all(|&l| l <= 1e-12),
                "FIFO met every deadline but EDF missed one: {edf_late:?}"
            );
        }
    }

    /// Aging bounds `Batch` wait: under a continuous backlogged stream
    /// of `Latency` work, a deadline-less `Batch` job is still served,
    /// and everything served ahead of it was submitted within the
    /// job's grace period (`4 × aging` after its submission) — the
    /// starvation bound of the virtual-deadline discipline.
    #[test]
    fn deadline_aging_bounds_batch_wait_under_urgent_stream(
        master in any::<u64>(),
        gap_ms in 1u64..5,
    ) {
        let t0 = Instant::now();
        let aging = Duration::from_millis(20);
        let batch_grace = aging * 4;
        let mut rng = master;
        // Latency jobs arrive every gap_ms with service >= the gap, so
        // the queue never drains: a policy without aging would starve
        // the Batch job forever.
        let nlat = 120usize;
        let arrivals: Vec<Duration> = (0..nlat)
            .map(|i| Duration::from_millis(gap_ms * i as u64))
            .collect();
        let services: Vec<Duration> = (0..nlat)
            .map(|_| Duration::from_millis(gap_ms + splitmix(&mut rng) % 4))
            .collect();
        let batch = SchedFacts {
            priority: Priority::Batch,
            deadline: None,
            submitted: t0,
        };
        // Event-driven single-server simulation over the virtual clock.
        let mut now = Duration::ZERO;
        let mut served_before_batch: Vec<usize> = Vec::new();
        let mut batch_done = false;
        let mut next = 0usize; // first latency job not yet arrived
        let mut queued: Vec<usize> = Vec::new();
        let mut backlog_at_batch = 0usize;
        while !batch_done {
            while next < nlat && arrivals[next] <= now {
                queued.push(next);
                next += 1;
            }
            let mut facts: Vec<SchedFacts> = queued
                .iter()
                .map(|&i| SchedFacts {
                    priority: Priority::Latency,
                    deadline: None,
                    submitted: t0 + arrivals[i],
                })
                .collect();
            facts.push(batch); // batch is always pending, at the back
            let picked = deadline_pick(&facts, aging);
            if picked == facts.len() - 1 {
                batch_done = true;
                backlog_at_batch = queued.len();
            } else {
                let job = queued.remove(picked);
                served_before_batch.push(job);
                now += services[job];
            }
        }
        // Batch must have *won over* pending urgent work, not been
        // served into an idle queue — otherwise the bound is vacuous.
        prop_assert!(
            backlog_at_batch > 0,
            "Batch was served only because the urgent stream drained"
        );
        for &i in &served_before_batch {
            prop_assert!(
                arrivals[i] <= batch_grace,
                "job arriving at {:?} (after the {:?} grace) ran before Batch",
                arrivals[i],
                batch_grace
            );
        }
    }

    /// Cancelled jobs never execute; everyone else still verifies
    /// bitwise, and the server's books balance.
    #[test]
    fn cancel_random_subset_never_executes_rest_verifies(
        njobs in 2usize..7,
        master in any::<u64>(),
    ) {
        let machine = Machine::flat(2);
        // Paused server: cancellation always beats the (not yet
        // started) slices, so the outcome is deterministic.
        let mut server = Server::new_paused(&machine, ServerConfig {
            policy: SchedPolicy::Deadline,
            ..ServerConfig::default()
        });
        let ops = op_pool();
        let mut rng = master;
        let mut jobs = Vec::new();
        for _ in 0..njobs {
            let op = ops[(splitmix(&mut rng) % 4) as usize];
            let dims = Dims3::cube(8 + (splitmix(&mut rng) % 5) as usize);
            let sweeps = 1 + (splitmix(&mut rng) % 3) as usize;
            let seed = splitmix(&mut rng);
            let payload = JobPayload::F64(init::random(dims, seed));
            let priority = Priority::ALL[(splitmix(&mut rng) % 3) as usize];
            let spec = JobSpec::new(op, payload, sweeps, JobMethod::Fixed(Method::Sequential))
                .with_priority(priority);
            let cancel_it = splitmix(&mut rng) & 1 == 1;
            let handle = server.submit(spec.clone()).expect("capacity outlasts njobs");
            jobs.push((spec, handle, cancel_it));
        }
        let mut expected_cancels = 0u64;
        for (_, handle, cancel_it) in &jobs {
            if *cancel_it {
                prop_assert!(handle.cancel(), "queued jobs must cancel");
                prop_assert!(!handle.cancel(), "double-cancel is a no-op");
                expected_cancels += 1;
            }
        }
        server.start();
        for (spec, handle, cancelled) in jobs {
            if cancelled {
                let err = handle.wait().expect_err("cancelled jobs never run");
                prop_assert!(err.message.contains("cancelled"), "got: {}", err.message);
            } else {
                let (got, report) = handle.wait().expect("surviving jobs run");
                let want = oracle(spec.op, &spec.payload, spec.sweeps);
                assert_payload_identical(&want, &got, spec.op.name());
                prop_assert_eq!(report.verify_hash, want.fingerprint());
                prop_assert_eq!(report.priority, spec.priority);
            }
        }
        let stats = server.stats();
        prop_assert_eq!(stats.cancels, expected_cancels);
        let completed: u64 = stats.classes.iter().map(|c| c.completed).sum();
        let cancelled: u64 = stats.classes.iter().map(|c| c.cancelled).sum();
        let admitted: u64 = stats.classes.iter().map(|c| c.admitted).sum();
        prop_assert_eq!(cancelled, expected_cancels);
        prop_assert_eq!(completed, njobs as u64 - expected_cancels);
        prop_assert_eq!(admitted, njobs as u64);
    }
}

/// `Rejected::Infeasible` is honest: a job shed at admission, actually
/// forced through a real solve, takes longer than the deadline it was
/// shed for — the model floor under-estimates real service time.
#[test]
fn infeasible_shed_jobs_really_would_have_missed() {
    let machine = Machine::flat(1);
    let server = Server::new_paused(
        &machine,
        ServerConfig {
            admission: Admission::Shed(MachineParams::nehalem_ep()),
            ..ServerConfig::default()
        },
    );
    let params = MachineParams::nehalem_ep();
    for edge in [24usize, 26, 28] {
        let grid: Grid3<f64> = init::random(Dims3::cube(edge), edge as u64);
        let sweeps = 4;
        let spec = JobSpec::new(
            JobOp::Jacobi6,
            JobPayload::F64(grid.clone()),
            sweeps,
            JobMethod::Fixed(Method::Sequential),
        );
        // Half the optimistic floor: certainly infeasible by the model.
        let floor = Duration::from_secs_f64(temporal_blocking::model::service_floor_seconds(
            &params,
            spec.op
                .streaming_bytes_per_lup(spec.payload.element_bytes()),
            spec.weight(),
        ));
        let deadline = floor / 2;
        let spec = spec.with_deadline(deadline);
        match server.submit(spec) {
            Err(Rejected::Infeasible(spec, predicted)) => {
                assert!(predicted >= floor, "prediction at least the model floor");
                // Ground truth: really run it (sequential, the fastest
                // warm-free path available here) and time it.
                let t0 = Instant::now();
                let (got, _) = solve_with(&Jacobi6, grid.clone(), sweeps, Method::Sequential)
                    .expect("the solve itself is fine");
                let elapsed = t0.elapsed();
                assert!(
                    elapsed > deadline,
                    "edge {edge}: shed job finished in {elapsed:?} <= deadline {deadline:?}"
                );
                // The spec really came back intact.
                assert_eq!(spec.payload.dims(), Dims3::cube(edge));
                let _ = got;
            }
            Ok(_) => panic!("edge {edge}: an infeasible job was admitted"),
            Err(other) => panic!(
                "edge {edge}: expected Infeasible, got {:?}",
                other.into_inner().tag
            ),
        }
    }
    assert_eq!(server.stats().sheds, 3);
}

#[test]
fn full_queue_rejects_and_returns_the_spec() {
    // Paused server: no slice drains the queue, so admission is exact.
    let machine = Machine::flat(1);
    let mut server = Server::new_paused(
        &machine,
        ServerConfig {
            queue_capacity: 2,
            ..ServerConfig::default()
        },
    );
    let spec = |seed| {
        JobSpec::new(
            JobOp::Jacobi6,
            JobPayload::F64(init::random(Dims3::cube(8), seed)),
            1,
            JobMethod::Fixed(Method::Sequential),
        )
    };
    let h1 = server.submit(spec(1)).expect("slot 1");
    let h2 = server.submit(spec(2)).expect("slot 2");
    let back = match server.submit(spec(3)) {
        Err(Rejected::Full(s)) => s,
        other => panic!("third submit must be rejected, got {:?}", other.is_ok()),
    };
    // The spec comes back intact — resubmittable once there is room.
    assert_eq!(back.payload.dims(), Dims3::cube(8));
    // The blocking form really waits its deadline out, then gives up.
    let t0 = std::time::Instant::now();
    assert!(matches!(
        server.submit_blocking(back, Duration::from_millis(30)),
        Err(Rejected::Full(_))
    ));
    assert!(t0.elapsed() >= Duration::from_millis(25));
    assert_eq!(server.queue_len(), 2);

    // Starting the slices drains and serves exactly what was admitted.
    server.start();
    for h in [h1, h2] {
        h.wait().expect("admitted jobs are served");
    }
}

#[test]
fn a_panicking_job_fails_alone_and_slices_keep_serving() {
    let machine = Machine::flat(2);
    let server = Server::new(
        &machine,
        ServerConfig {
            slices: SlicePolicy::Fixed(2),
            ..ServerConfig::default()
        },
    );
    assert_eq!(server.slices().len(), 2);
    let good = |seed| {
        JobSpec::new(
            JobOp::Jacobi6,
            JobPayload::F64(init::random(Dims3::cube(10), seed)),
            2,
            JobMethod::Fixed(Method::Sequential),
        )
    };
    let poison = JobSpec::new(
        JobOp::PanicForTest,
        JobPayload::F64(init::random(Dims3::cube(8), 0)),
        1,
        JobMethod::Fixed(Method::Sequential),
    );

    // Interleave: good, poison, good — then, after the poison has
    // certainly failed, more good jobs (they land on whichever slice is
    // free, including the one that caught the panic).
    let h1 = server.submit(good(1)).unwrap();
    let hp = server.submit(poison).unwrap();
    let h2 = server.submit(good(2)).unwrap();
    let err = hp.wait().expect_err("the poison job must fail");
    assert!(err.message.contains("panicked"), "got: {}", err.message);
    let late: Vec<JobHandle> = (3..7).map(|s| server.submit(good(s)).unwrap()).collect();

    for (i, h) in [h1, h2].into_iter().chain(late).enumerate() {
        let (payload, report) = h.wait().unwrap_or_else(|e| panic!("good job {i}: {e}"));
        assert_eq!(
            report.verify_hash,
            payload.fingerprint(),
            "good job {i}: report hash must describe the returned grid"
        );
    }
    // One more job *after* everything, verified fully bitwise: the
    // server is still a correct solver once the dust settles.
    let (payload, _) = server.submit(good(1)).unwrap().wait().unwrap();
    let (want, _) =
        temporal_blocking::solve::<f64>(init::random(Dims3::cube(10), 1), 2, Method::Sequential)
            .unwrap();
    assert_payload_identical(&JobPayload::F64(want), &payload, "post-panic solve");
}

#[test]
fn warm_tuned_jobs_replay_with_zero_measurements() {
    let dir = std::env::temp_dir().join(format!("tb-serve-warm-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let cache: PathBuf = dir.join("serve_warm.json");
    std::fs::remove_file(&cache).ok();

    let machine = Machine::flat(2);
    let server = Server::new(&machine, ServerConfig::default());
    let tuned = TuneOptions {
        cache_path: Some(cache),
        top_k: 1,
        params: Some(MachineParams::nehalem_ep()),
        families: vec![MethodFamily::Parallel],
        ..TuneOptions::default()
    };
    let spec = || {
        JobSpec::new(
            JobOp::Jacobi6,
            JobPayload::F64(init::random(Dims3::cube(12), 9)),
            2,
            JobMethod::Tuned(tuned.clone()),
        )
    };
    let (_, cold) = server.submit(spec()).unwrap().wait().expect("cold tune");
    let cold = cold.tuned.expect("tuned jobs report tuning facts");
    assert!(!cold.cache_hit);
    assert!(cold.measurements > 0, "a cold tune measures candidates");

    let (warm_payload, warm) = server.submit(spec()).unwrap().wait().expect("warm replay");
    let warm_facts = warm.tuned.expect("tuned jobs report tuning facts");
    assert!(
        warm_facts.cache_hit,
        "second identical job must hit the cache"
    );
    assert_eq!(warm_facts.measurements, 0, "a warm job measures nothing");
    assert_eq!(
        warm_facts.plan, cold.plan,
        "the replayed plan is the winner"
    );

    // And the replay is still bitwise-correct.
    let want = oracle(JobOp::Jacobi6, &spec().payload, 2);
    assert_payload_identical(&want, &warm_payload, "warm tuned job");
    assert_eq!(warm.verify_hash, want.fingerprint());
}
