//! End-to-end operator × execution-strategy matrix.
//!
//! Every shipped stencil operator must produce **bitwise identical**
//! grids across every execution strategy — sequential, blocked,
//! parallel ± streaming stores, pipelined (barrier and relaxed),
//! compressed, wavefront, and distributed/hybrid — for the same sweep
//! count. The oracle is the operator's own sequential solver.

use temporal_blocking::dist::{solver, Decomposition, DistSolver, LocalExec};
use temporal_blocking::grid::{init, norm, Dims3, Grid3, Region3};
use temporal_blocking::net::{CartComm, Universe};
use temporal_blocking::stencil::config::GridScheme;
use temporal_blocking::{
    solve_with, Avg27, DiamondConfig, Jacobi6, Jacobi7, Method, PipelineConfig, StencilOp,
    SyncMode, VarCoeff7,
};

fn cfg(team: usize, upt: usize, sync: SyncMode, block: [usize; 3]) -> PipelineConfig {
    PipelineConfig {
        team_size: team,
        n_teams: 1,
        updates_per_thread: upt,
        block,
        sync,
        scheme: GridScheme::TwoGrid,
        layout: None,
        audit: true, // integration tests always run the race auditor
    }
}

/// Run the full shared-memory method matrix for one operator.
fn shared_memory_matrix<Op: StencilOp<f64>>(op: &Op, dims: Dims3, seed: u64, sweeps: usize) {
    let initial: Grid3<f64> = init::random(dims, seed);
    let (want, _) = solve_with(op, initial.clone(), sweeps, Method::Sequential).unwrap();
    let methods: Vec<(&str, Method)> = vec![
        ("blocked", Method::Blocked { block: [9, 7, 8] }),
        (
            "par",
            Method::Parallel {
                threads: 3,
                streaming_stores: false,
            },
        ),
        (
            "par-nt",
            Method::Parallel {
                threads: 2,
                streaming_stores: true,
            },
        ),
        (
            "pipelined-relaxed",
            Method::Pipelined(cfg(2, 2, SyncMode::relaxed_default(), [10, 10, 10])),
        ),
        (
            "pipelined-barrier",
            Method::Pipelined(cfg(3, 1, SyncMode::Barrier, [10, 10, 10])),
        ),
        (
            "compressed",
            Method::PipelinedCompressed(cfg(2, 1, SyncMode::relaxed_default(), [10, 10, 10])),
        ),
        ("wavefront", Method::Wavefront { threads: 3 }),
        (
            "diamond",
            Method::Diamond(DiamondConfig {
                threads: 3,
                width: 6,
                threads_per_tile: 1,
                audit: true,
            }),
        ),
        (
            "diamond-wide",
            Method::Diamond(DiamondConfig {
                threads: 2,
                width: 16,
                threads_per_tile: 1,
                audit: true,
            }),
        ),
        (
            "diamond-mwd",
            Method::Diamond(DiamondConfig {
                threads: 4,
                width: 8,
                threads_per_tile: 2,
                audit: true,
            }),
        ),
    ];
    for (name, m) in methods {
        let (got, _) = solve_with(op, initial.clone(), sweeps, m)
            .unwrap_or_else(|e| panic!("{} via {name}: {e}", op.name()));
        norm::assert_grids_identical(
            &want,
            &got,
            &Region3::whole(dims),
            &format!("{} via {name}", op.name()),
        );
    }
}

/// Which local advance the distributed matrix drives inside each rank.
#[derive(Clone, Copy, Debug)]
enum Local {
    Seq,
    Hybrid,
    Diamond,
}

impl Local {
    fn exec(self) -> LocalExec {
        match self {
            Local::Seq => LocalExec::Seq,
            Local::Hybrid => {
                LocalExec::Pipelined(cfg(2, 1, SyncMode::relaxed_default(), [8, 8, 8]))
            }
            Local::Diamond => LocalExec::Diamond(DiamondConfig {
                threads: 2,
                width: 4,
                threads_per_tile: 2, // MWD inside every rank
                audit: true,
            }),
        }
    }
}

/// Run the distributed matrix (pure-MPI, hybrid pipelined, or hybrid
/// diamond) for one operator.
fn distributed_matrix<Op: StencilOp<f64>>(
    op: &Op,
    dims: Dims3,
    pgrid: [usize; 3],
    h: usize,
    sweeps: usize,
    local: Local,
) {
    let global: Grid3<f64> = init::random(dims, 77);
    let want = solver::serial_reference_op(op, &global, sweeps);
    let dec = Decomposition::new(dims, pgrid, h);
    let (g, w, op_ref) = (&global, &want, op);
    Universe::run(dec.ranks(), None, move |comm| {
        let mut cart = CartComm::new(comm, pgrid);
        let mut s =
            DistSolver::from_global_op(&dec, cart.coords(), g, local.exec(), op_ref.clone())
                .unwrap();
        s.run_sweeps(&mut cart, sweeps);
        if let Some(got) = s.gather_global(&mut cart, &dec, g) {
            norm::assert_grids_identical(
                w,
                &got,
                &Region3::interior_of(dims),
                &format!("dist {} {pgrid:?} h={h} {local:?}", op_ref.name()),
            );
        }
    });
}

#[test]
fn jacobi6_matrix() {
    shared_memory_matrix(&Jacobi6, Dims3::cube(24), 1, 7);
}

#[test]
fn jacobi7_matrix() {
    shared_memory_matrix(&Jacobi7::heat(0.09), Dims3::new(26, 22, 20), 2, 6);
}

#[test]
fn varcoeff7_matrix() {
    let dims = Dims3::new(22, 26, 20);
    shared_memory_matrix(&VarCoeff7::banded(dims), dims, 3, 6);
}

#[test]
fn avg27_matrix() {
    shared_memory_matrix(&Avg27, Dims3::cube(24), 4, 7);
}

#[test]
fn distributed_matrix_per_operator() {
    let dims = Dims3::new(20, 18, 16);
    distributed_matrix(&Jacobi6, dims, [2, 2, 1], 2, 5, Local::Seq);
    distributed_matrix(&Jacobi7::heat(0.13), dims, [2, 1, 2], 2, 5, Local::Seq);
    distributed_matrix(&VarCoeff7::banded(dims), dims, [1, 2, 2], 2, 5, Local::Seq);
    distributed_matrix(&Avg27, dims, [2, 2, 2], 3, 7, Local::Seq);
}

#[test]
fn hybrid_distributed_per_operator() {
    // Pipelined temporal blocking inside each rank: depth 2 needs h >= 2.
    let dims = Dims3::cube(26);
    distributed_matrix(&Jacobi6, dims, [2, 1, 1], 2, 5, Local::Hybrid);
    distributed_matrix(&Jacobi7::heat(0.1), dims, [2, 1, 1], 2, 5, Local::Hybrid);
    distributed_matrix(
        &VarCoeff7::banded(dims),
        dims,
        [1, 2, 1],
        2,
        5,
        Local::Hybrid,
    );
    distributed_matrix(&Avg27, dims, [1, 1, 2], 2, 5, Local::Hybrid);
}

#[test]
fn diamond_distributed_per_operator_eight_ranks() {
    // Diamond blocking inside each of 8 ranks: every operator, corner
    // forwarding included, gathers the exact serial-oracle grid.
    let dims = Dims3::new(20, 18, 16);
    distributed_matrix(&Jacobi6, dims, [2, 2, 2], 2, 5, Local::Diamond);
    distributed_matrix(&Jacobi7::heat(0.1), dims, [2, 2, 2], 2, 5, Local::Diamond);
    distributed_matrix(
        &VarCoeff7::banded(dims),
        dims,
        [2, 2, 2],
        2,
        5,
        Local::Diamond,
    );
    distributed_matrix(&Avg27, dims, [2, 2, 2], 3, 7, Local::Diamond);
}

#[test]
fn f32_operators_match_their_oracle_too() {
    let dims = Dims3::cube(18);
    let initial: Grid3<f32> = init::random(dims, 6);
    for (name, m) in [
        (
            "par",
            Method::Parallel {
                threads: 2,
                streaming_stores: true, // f32 falls back to plain stores
            },
        ),
        (
            "pipelined",
            Method::Pipelined(cfg(2, 1, SyncMode::relaxed_default(), [8, 8, 8])),
        ),
        ("wavefront", Method::Wavefront { threads: 2 }),
        (
            "diamond",
            Method::Diamond(DiamondConfig {
                threads: 2,
                width: 4,
                threads_per_tile: 2,
                audit: true,
            }),
        ),
    ] {
        let op = Jacobi7::heat(0.1);
        let (want, _) = solve_with(&op, initial.clone(), 4, Method::Sequential).unwrap();
        let (got, _) = solve_with(&op, initial.clone(), 4, m).unwrap();
        norm::assert_grids_identical(&want, &got, &Region3::whole(dims), name);
    }
}

#[test]
fn operators_actually_differ() {
    // Guard against accidentally wiring every operator to the same
    // kernel: one sweep of each operator on the same input must produce
    // pairwise different grids.
    let dims = Dims3::cube(12);
    let initial: Grid3<f64> = init::random(dims, 9);
    let a = solve_with(&Jacobi6, initial.clone(), 1, Method::Sequential)
        .unwrap()
        .0;
    let b = solve_with(&Jacobi7::heat(0.1), initial.clone(), 1, Method::Sequential)
        .unwrap()
        .0;
    let c = solve_with(
        &VarCoeff7::banded(dims),
        initial.clone(),
        1,
        Method::Sequential,
    )
    .unwrap()
    .0;
    let d = solve_with(&Avg27, initial, 1, Method::Sequential)
        .unwrap()
        .0;
    let int = Region3::interior_of(dims);
    for (x, y, label) in [
        (&a, &b, "jacobi6 vs jacobi7"),
        (&a, &c, "jacobi6 vs varcoeff7"),
        (&a, &d, "jacobi6 vs avg27"),
        (&b, &c, "jacobi7 vs varcoeff7"),
        (&b, &d, "jacobi7 vs avg27"),
        (&c, &d, "varcoeff7 vs avg27"),
    ] {
        assert!(
            norm::first_mismatch(x, y, &int).is_some(),
            "{label}: operators collapsed to the same kernel"
        );
    }
}
