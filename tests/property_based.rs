//! Property-based tests (proptest) over the core data structures and the
//! pipelined executor.
//!
//! Strategy ranges are kept small enough for CI but cover the interesting
//! degrees of freedom: grid anisotropy, block anisotropy, pipeline depth,
//! sync parameters, sweep counts that are not multiples of the depth.

use proptest::prelude::*;

use temporal_blocking::grid::{init, norm, BlockPartition, Dims3, Grid3, Region3};
use temporal_blocking::stencil::config::GridScheme;
use temporal_blocking::stencil::pipeline::PipelinePlan;
use temporal_blocking::{
    solve, solve_with, Avg27, Jacobi7, Method, PipelineConfig, StencilOp, SyncMode, VarCoeff7,
};

/// Cross-solver bitwise identity for one operator on randomized
/// dims/threads/block shapes: every method must reproduce the operator's
/// sequential oracle exactly.
fn assert_all_methods_bitwise<Op: StencilOp<f64>>(
    op: &Op,
    dims: Dims3,
    seed: u64,
    sweeps: usize,
    threads: usize,
    block: [usize; 3],
) -> Result<(), TestCaseError> {
    let initial: Grid3<f64> = init::random(dims, seed);
    let (want, _) = solve_with(op, initial.clone(), sweeps, Method::Sequential).unwrap();
    let cfg = PipelineConfig {
        team_size: threads,
        n_teams: 1,
        updates_per_thread: 1,
        block,
        sync: SyncMode::relaxed_default(),
        scheme: GridScheme::TwoGrid,
        layout: None,
        audit: true,
    };
    let methods: Vec<(&str, Method)> = vec![
        ("blocked", Method::Blocked { block }),
        (
            "par",
            Method::Parallel {
                threads,
                streaming_stores: false,
            },
        ),
        (
            "par-nt",
            Method::Parallel {
                threads,
                streaming_stores: true,
            },
        ),
        ("pipelined", Method::Pipelined(cfg.clone())),
        ("compressed", Method::PipelinedCompressed(cfg)),
        ("wavefront", Method::Wavefront { threads }),
    ];
    for (name, m) in methods {
        let (got, _) = solve_with(op, initial.clone(), sweeps, m).unwrap();
        let mismatch = norm::first_mismatch(&want, &got, &Region3::whole(dims));
        prop_assert!(
            mismatch.is_none(),
            "{} via {name} diverged at {mismatch:?}",
            op.name()
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Region algebra: intersection is commutative, contained in both
    /// operands, and expanding then shrinking returns the original
    /// (away from the origin).
    #[test]
    fn region_algebra(
        lo in prop::array::uniform3(1usize..20),
        ext in prop::array::uniform3(1usize..15),
        lo2 in prop::array::uniform3(1usize..20),
        ext2 in prop::array::uniform3(1usize..15),
        g in 1usize..4,
    ) {
        let a = Region3::new(lo, [lo[0]+ext[0], lo[1]+ext[1], lo[2]+ext[2]]);
        let b = Region3::new(lo2, [lo2[0]+ext2[0], lo2[1]+ext2[1], lo2[2]+ext2[2]]);
        let i1 = a.intersect(&b);
        let i2 = b.intersect(&a);
        prop_assert_eq!(i1, i2);
        prop_assert!(a.contains_region(&i1));
        prop_assert!(b.contains_region(&i1));
        // expand saturates at 0, so the roundtrip only holds when the
        // region sits at least g cells away from the origin.
        if lo.iter().all(|&l| l >= g) {
            prop_assert_eq!(a.expand(g).shrink(g), a);
        }
        prop_assert_eq!(a.intersects(&b), i1.count() > 0);
    }

    /// Block partitions tile their domain exactly: full coverage, no
    /// overlap, linear index roundtrips.
    #[test]
    fn block_partition_tiles(
        dom_lo in prop::array::uniform3(0usize..5),
        dom_ext in prop::array::uniform3(3usize..25),
        blk in prop::array::uniform3(1usize..12),
    ) {
        let dom = Region3::new(dom_lo, [
            dom_lo[0]+dom_ext[0], dom_lo[1]+dom_ext[1], dom_lo[2]+dom_ext[2],
        ]);
        let p = BlockPartition::new(dom, blk);
        let total: usize = p.iter().map(|(_, _, r)| r.count()).sum();
        prop_assert_eq!(total, dom.count());
        for (l, b, r) in p.iter() {
            prop_assert_eq!(p.linear(b), l);
            prop_assert!(dom.contains_region(&r));
        }
    }

    /// Every stage of any valid plan tiles its stage domain exactly.
    #[test]
    fn plan_stages_tile(
        n in 10usize..26,
        bx in 4usize..12,
        stages in 1usize..4,
        dir in prop::sample::select(vec![-1i64, 1]),
    ) {
        prop_assume!(bx >= stages);
        let interior = Region3::new([1, 1, 1], [n - 1, n - 1, n - 1]);
        let plan = PipelinePlan::uniform(interior, [bx, bx, bx], stages);
        for s in 0..stages {
            let total: usize = (0..plan.num_blocks())
                .map(|j| plan.region(j, s, dir).count())
                .sum();
            prop_assert_eq!(total, interior.count());
        }
    }

    /// Randomized pipelined configurations are bitwise equal to the
    /// sequential solver (with the race auditor enabled).
    #[test]
    fn pipelined_equals_sequential(
        seed in 0u64..1000,
        team in 1usize..4,
        upt in 1usize..3,
        sweeps in 1usize..10,
        du in 1u64..6,
        barrier in any::<bool>(),
    ) {
        let dims = Dims3::cube(20);
        let depth = team * upt;
        prop_assume!(depth <= 6);
        let sync = if barrier {
            SyncMode::Barrier
        } else {
            SyncMode::Relaxed { dl: 1, du, dt: 0 }
        };
        let cfg = PipelineConfig {
            team_size: team,
            n_teams: 1,
            updates_per_thread: upt,
            block: [8, 8, 8],
            sync,
            scheme: GridScheme::TwoGrid,
            layout: None,
            audit: true,
        };
        prop_assume!(cfg.validate(dims).is_ok());
        let initial: Grid3<f64> = init::random(dims, seed);
        let (want, _) = solve(initial.clone(), sweeps, Method::Sequential).unwrap();
        let (got, _) = solve(initial, sweeps, Method::Pipelined(cfg)).unwrap();
        prop_assert!(norm::first_mismatch(&want, &got, &Region3::whole(dims)).is_none());
    }

    /// Compressed-grid runs with random depths/sweeps match the
    /// sequential solver too.
    #[test]
    fn compressed_equals_sequential(
        seed in 0u64..1000,
        team in 1usize..3,
        upt in 1usize..3,
        sweeps in 1usize..9,
    ) {
        let dims = Dims3::cube(20);
        let depth = team * upt;
        prop_assume!(depth <= 4);
        let cfg = PipelineConfig {
            team_size: team,
            n_teams: 1,
            updates_per_thread: upt,
            block: [8, 8, 8],
            sync: SyncMode::relaxed_default(),
            scheme: GridScheme::Compressed,
            layout: None,
            audit: true,
        };
        prop_assume!(cfg.validate(dims).is_ok());
        let initial: Grid3<f64> = init::random(dims, seed);
        let (want, _) = solve(initial.clone(), sweeps, Method::Sequential).unwrap();
        let (got, _) = solve(initial, sweeps, Method::PipelinedCompressed(cfg)).unwrap();
        prop_assert!(norm::first_mismatch(&want, &got, &Region3::whole(dims)).is_none());
    }

    /// The 7-point heat operator matches its sequential oracle across
    /// every method for randomized dims, thread counts and block shapes.
    #[test]
    fn heat_op_all_methods_bitwise(
        seed in 0u64..1000,
        nx in 12usize..22,
        ny in 12usize..22,
        nz in 12usize..22,
        threads in 1usize..4,
        bx in 8usize..12,
        sweeps in 1usize..8,
        k_millis in 10u64..160,
    ) {
        let dims = Dims3::new(nx, ny, nz);
        let op = Jacobi7::heat(k_millis as f64 / 1000.0);
        assert_all_methods_bitwise(&op, dims, seed, sweeps, threads, [bx, bx, bx])?;
    }

    /// The variable-coefficient operator (extra read stream, logical-
    /// coordinate lookup) matches its oracle across every method.
    #[test]
    fn varcoeff_op_all_methods_bitwise(
        seed in 0u64..1000,
        n in 14usize..22,
        threads in 1usize..4,
        bx in 8usize..12,
        by in 8usize..12,
        sweeps in 1usize..8,
    ) {
        let dims = Dims3::cube(n);
        let op = VarCoeff7::banded(dims);
        assert_all_methods_bitwise(&op, dims, seed, sweeps, threads, [bx, by, 8])?;
    }

    /// The corner-reading 27-point operator — the hardest case for the
    /// compressed in-place scheme — matches its oracle everywhere.
    #[test]
    fn avg27_op_all_methods_bitwise(
        seed in 0u64..1000,
        nx in 12usize..20,
        nz in 12usize..20,
        threads in 1usize..4,
        bx in 8usize..12,
        sweeps in 1usize..8,
    ) {
        let dims = Dims3::new(nx, 16, nz);
        assert_all_methods_bitwise(&Avg27, dims, seed, sweeps, threads, [bx, 8, bx])?;
    }
}
