//! End-to-end cross-solver verification.
//!
//! Every solver in the workspace must produce **bitwise identical** grids
//! for the same sweep count — the kernels share one operand order, so any
//! deviation is a scheduling/geometry bug, not floating-point noise.

use temporal_blocking::grid::{init, norm, Dims3, Grid3, Region3};
use temporal_blocking::stencil::config::GridScheme;
use temporal_blocking::{solve, Method, PipelineConfig, SyncMode};

fn reference(dims: Dims3, seed: u64, sweeps: usize) -> Grid3<f64> {
    let initial: Grid3<f64> = init::random(dims, seed);
    solve(initial, sweeps, Method::Sequential).unwrap().0
}

fn cfg(team: usize, teams: usize, upt: usize, sync: SyncMode, block: [usize; 3]) -> PipelineConfig {
    PipelineConfig {
        team_size: team,
        n_teams: teams,
        updates_per_thread: upt,
        block,
        sync,
        scheme: GridScheme::TwoGrid,
        layout: None,
        audit: true, // integration tests always run the race auditor
    }
}

fn check(dims: Dims3, seed: u64, sweeps: usize, method: Method, label: &str) {
    let want = reference(dims, seed, sweeps);
    let initial: Grid3<f64> = init::random(dims, seed);
    let (got, _) = solve(initial, sweeps, method).unwrap_or_else(|e| panic!("{label}: {e}"));
    norm::assert_grids_identical(&want, &got, &Region3::whole(dims), label);
}

#[test]
fn pipelined_matrix_of_configurations() {
    let dims = Dims3::cube(26);
    for (team, teams, upt) in [
        (1, 1, 2),
        (2, 1, 1),
        (2, 1, 2),
        (3, 1, 1),
        (2, 2, 1),
        (4, 1, 1),
    ] {
        for sweeps in [1usize, 3, 8] {
            let c = cfg(team, teams, upt, SyncMode::relaxed_default(), [10, 10, 10]);
            check(
                dims,
                11,
                sweeps,
                Method::Pipelined(c),
                &format!("pipelined t={team} n={teams} T={upt} sweeps={sweeps}"),
            );
        }
    }
}

#[test]
fn pipelined_sync_variants() {
    let dims = Dims3::cube(24);
    for sync in [
        SyncMode::Barrier,
        SyncMode::Relaxed {
            dl: 1,
            du: 1,
            dt: 0,
        },
        SyncMode::Relaxed {
            dl: 1,
            du: 4,
            dt: 0,
        },
        SyncMode::Relaxed {
            dl: 1,
            du: 16,
            dt: 0,
        },
        SyncMode::Relaxed {
            dl: 2,
            du: 4,
            dt: 0,
        },
        SyncMode::Relaxed {
            dl: 1,
            du: 4,
            dt: 8,
        },
    ] {
        let c = cfg(2, 2, 1, sync, [9, 9, 9]);
        check(dims, 23, 9, Method::Pipelined(c), &format!("sync {sync:?}"));
    }
}

#[test]
fn compressed_matrix() {
    let dims = Dims3::cube(24);
    for (team, upt) in [(1, 2), (2, 1), (2, 2), (3, 1)] {
        for sweeps in [2usize, 5, 12] {
            let mut c = cfg(team, 1, upt, SyncMode::relaxed_default(), [10, 10, 10]);
            c.scheme = GridScheme::Compressed;
            check(
                dims,
                37,
                sweeps,
                Method::PipelinedCompressed(c),
                &format!("compressed t={team} T={upt} sweeps={sweeps}"),
            );
        }
    }
}

#[test]
fn wavefront_thread_counts() {
    let dims = Dims3::cube(22);
    for threads in [1usize, 2, 3, 5] {
        for sweeps in [2usize, 7] {
            check(
                dims,
                5,
                sweeps,
                Method::Wavefront { threads },
                &format!("wavefront {threads} threads {sweeps} sweeps"),
            );
        }
    }
}

#[test]
fn anisotropic_grids_and_blocks() {
    for (dims, block) in [
        (Dims3::new(34, 18, 12), [16, 6, 4]),
        (Dims3::new(12, 34, 18), [10, 12, 8]),
        (Dims3::new(18, 12, 34), [8, 5, 16]),
    ] {
        let c = cfg(2, 1, 2, SyncMode::relaxed_default(), block);
        check(dims, 3, 6, Method::Pipelined(c), &format!("aniso {dims}"));
    }
}

#[test]
fn linear_field_stays_fixed_for_every_solver() {
    // The Jacobi operator leaves affine fields invariant up to the 1-ulp
    // slack of multiplying by 1/6 instead of dividing by 6; after many
    // sweeps the drift must stay tiny for every solver.
    let dims = Dims3::cube(20);
    let initial: Grid3<f64> = init::linear(dims, 0.5, -1.0, 2.0, 3.0);
    for (label, method) in [
        ("seq", Method::Sequential),
        (
            "pipe",
            Method::Pipelined(cfg(2, 1, 2, SyncMode::relaxed_default(), [8, 8, 8])),
        ),
        ("wave", Method::Wavefront { threads: 2 }),
    ] {
        let (got, _) = solve(initial.clone(), 20, method).unwrap();
        let drift = norm::max_abs_diff(&initial, &got, &Region3::interior_of(dims));
        assert!(drift < 1e-10, "{label}: affine field drifted by {drift}");
    }
}

#[test]
fn f32_pipeline_matches_f32_reference() {
    let dims = Dims3::cube(22);
    let initial: Grid3<f32> = init::random(dims, 9);
    let (want, _) = solve(initial.clone(), 5, Method::Sequential).unwrap();
    let c = cfg(2, 1, 1, SyncMode::relaxed_default(), [9, 9, 9]);
    let (got, _) = solve(initial, 5, Method::Pipelined(c)).unwrap();
    norm::assert_grids_identical(&want, &got, &Region3::whole(dims), "f32 pipeline");
}

#[test]
fn long_run_many_team_sweeps() {
    // Many full + one partial team sweep, crossing parity repeatedly.
    let dims = Dims3::cube(20);
    let c = cfg(2, 1, 1, SyncMode::relaxed_default(), [8, 8, 8]); // depth 2
    check(dims, 77, 31, Method::Pipelined(c), "31 sweeps depth 2");
}
