//! Property-based verification of the explicit SIMD row path and the
//! multi-threaded wavefront diamond (MWD) executor.
//!
//! Two contracts are pinned here:
//!
//! 1. **SIMD ≡ scalar, bitwise.** `StencilOp::apply_row_simd` — whether
//!    it resolves to the runtime-dispatched AVX kernels or the portable
//!    lane path — must produce exactly the bits of the scalar
//!    `apply_row` oracle, for every shipped operator, in `f64` *and*
//!    `f32`, at arbitrary row lengths (not multiples of the lane width)
//!    and arbitrary `x0` offsets (head/tail splits and coefficient-row
//!    addressing in play). Checked both at row granularity and through
//!    full solves via [`ScalarPath`].
//!
//! 2. **MWD ≡ single-threaded diamond ≡ oracle, bitwise.** Splitting a
//!    diamond tile across a sub-team (`threads_per_tile > 1`) is an
//!    execution-order change only; for random geometry, team size,
//!    width and sub-team size the result must stay bit-identical.

use proptest::prelude::*;

use temporal_blocking::grid::{init, norm, Dims3, Grid3, Real, Region3};
use temporal_blocking::stencil::Rows9;
use temporal_blocking::{
    solve_with, Avg27, DiamondConfig, Jacobi6, Jacobi7, Method, ScalarPath, StencilOp, VarCoeff7,
};

/// Exact bit pattern of a value; `f32 → f64` widening is lossless, so
/// equal `f64` bits means equal `T` bits for both element types.
fn bits<T: Real>(v: T) -> u64 {
    v.to_f64().to_bits()
}

/// Row-granularity check: one `apply_row_simd` against the scalar route
/// on the same nine source rows.
fn assert_row_matches<T: Real, Op: StencilOp<T>>(
    op: &Op,
    dims: Dims3,
    seed: u64,
    x0: usize,
    x1: usize,
    y: usize,
    z: usize,
) -> Result<(), TestCaseError> {
    let g: Grid3<T> = init::random(dims, seed);
    let rows = Rows9::from_grid(&g, x0, x1, y, z);
    let mut simd = vec![T::ZERO; x1 - x0];
    let mut scalar = vec![T::ZERO; x1 - x0];
    op.apply_row_simd(&mut simd, &rows, x0, y, z);
    ScalarPath(op.clone()).apply_row_simd(&mut scalar, &rows, x0, y, z);
    for (i, (a, b)) in simd.iter().zip(&scalar).enumerate() {
        prop_assert!(
            bits(*a) == bits(*b),
            "{} row x0={x0} x1={x1} y={y} z={z}: cell {i} diverged ({a} != {b})",
            op.name()
        );
    }
    Ok(())
}

/// Full-solve check: the vectorized operator against its
/// [`ScalarPath`]-pinned twin and the sequential oracle.
fn assert_solve_matches<T: Real, Op: StencilOp<T>>(
    op: &Op,
    dims: Dims3,
    seed: u64,
    sweeps: usize,
    method: Method,
) -> Result<(), TestCaseError> {
    let initial: Grid3<T> = init::random(dims, seed);
    let (oracle, _) = solve_with(
        &ScalarPath(op.clone()),
        initial.clone(),
        sweeps,
        Method::Sequential,
    )
    .unwrap();
    let (vectorized, _) = solve_with(op, initial.clone(), sweeps, method.clone()).unwrap();
    let (scalar, _) = solve_with(&ScalarPath(op.clone()), initial, sweeps, method).unwrap();
    let whole = Region3::whole(dims);
    prop_assert!(
        norm::first_mismatch(&oracle, &scalar, &whole).is_none(),
        "{} scalar solve diverged from oracle (pre-existing bug)",
        op.name()
    );
    let mismatch = norm::first_mismatch(&oracle, &vectorized, &whole);
    prop_assert!(
        mismatch.is_none(),
        "{} vectorized solve diverged from the scalar oracle at {mismatch:?}",
        op.name()
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Random dims (x-extent deliberately allowed to be ≢ 0 mod 8),
    /// random sub-row offsets, all four operators, f64 and f32: the
    /// SIMD row is bit-identical to the scalar row.
    #[test]
    fn simd_rows_match_scalar_rows(
        nx in 6usize..40,
        ny in 4usize..10,
        nz in 4usize..10,
        seed in 0u64..1000,
        x0_pick in 0usize..32,
        len_pick in 0usize..32,
        yz_pick in 0usize..64,
        which_op in 0usize..4,
        use_f32 in proptest::any::<bool>(),
    ) {
        let dims = Dims3::new(nx, ny, nz);
        // Arbitrary interior sub-row: offset addressing and row lengths
        // that leave scalar heads and tails around the vector body.
        let x0 = 1 + x0_pick % (nx - 3);
        let x1 = x0 + 1 + len_pick % (nx - 1 - x0);
        let y = 1 + yz_pick % (ny - 2);
        let z = 1 + (yz_pick / 8) % (nz - 2);
        macro_rules! check {
            ($t:ty) => {
                match which_op {
                    0 => assert_row_matches::<$t, _>(&Jacobi6, dims, seed, x0, x1, y, z)?,
                    1 => assert_row_matches::<$t, _>(
                        &Jacobi7::heat(0.13), dims, seed, x0, x1, y, z)?,
                    2 => assert_row_matches::<$t, _>(
                        &VarCoeff7::banded(dims), dims, seed, x0, x1, y, z)?,
                    _ => assert_row_matches::<$t, _>(&Avg27, dims, seed, x0, x1, y, z)?,
                }
            };
        }
        if use_f32 { check!(f32) } else { check!(f64) }
    }

    /// Whole solves through the executors that drive the SIMD row path:
    /// vectorized ≡ scalar-pinned ≡ oracle for every operator, f64 and
    /// f32, across sequential, wavefront and diamond execution.
    #[test]
    fn simd_solves_match_scalar_solves(
        edge in 8usize..18,
        seed in 0u64..1000,
        sweeps in 1usize..7,
        which_op in 0usize..4,
        which_method in 0usize..3,
        use_f32 in proptest::any::<bool>(),
    ) {
        let dims = Dims3::cube(edge);
        let method = match which_method {
            0 => Method::Sequential,
            1 => Method::Wavefront { threads: 2 },
            _ => Method::Diamond(DiamondConfig::with_width(2, 6)),
        };
        macro_rules! check {
            ($t:ty) => {
                match which_op {
                    0 => assert_solve_matches::<$t, _>(&Jacobi6, dims, seed, sweeps, method)?,
                    1 => assert_solve_matches::<$t, _>(
                        &Jacobi7::heat(0.13), dims, seed, sweeps, method)?,
                    2 => assert_solve_matches::<$t, _>(
                        &VarCoeff7::banded(dims), dims, seed, sweeps, method)?,
                    _ => assert_solve_matches::<$t, _>(&Avg27, dims, seed, sweeps, method)?,
                }
            };
        }
        if use_f32 { check!(f32) } else { check!(f64) }
    }

    /// MWD: random team size, diamond width and sub-team size — the
    /// multi-threaded-tile run is bit-identical to the single-threaded
    /// diamond run and to the sequential oracle (vectorized rows on).
    #[test]
    fn mwd_matches_single_thread_and_oracle(
        nx in 8usize..20,
        ny in 8usize..20,
        nz in 8usize..20,
        seed in 0u64..1000,
        sweeps in 1usize..7,
        threads in 2usize..5,
        width in 2usize..13,
        tpt_pick in 0usize..8,
        avg in proptest::any::<bool>(),
    ) {
        let dims = Dims3::new(nx, ny, nz);
        let divisors: Vec<usize> = (2..=threads).filter(|d| threads % d == 0).collect();
        let tpt = divisors[tpt_pick % divisors.len()];
        let initial: Grid3<f64> = init::random(dims, seed);
        let mwd = Method::Diamond(DiamondConfig {
            threads,
            width,
            threads_per_tile: tpt,
            audit: true,
        });
        let single = Method::Diamond(DiamondConfig {
            threads,
            width,
            threads_per_tile: 1,
            audit: true,
        });
        macro_rules! check_op {
            ($op:expr) => {{
                let op = $op;
                let (oracle, _) =
                    solve_with(&op, initial.clone(), sweeps, Method::Sequential).unwrap();
                let (got_mwd, _) = solve_with(&op, initial.clone(), sweeps, mwd).unwrap();
                let (got_single, _) = solve_with(&op, initial.clone(), sweeps, single).unwrap();
                let whole = Region3::whole(dims);
                let mismatch = norm::first_mismatch(&oracle, &got_mwd, &whole);
                prop_assert!(
                    mismatch.is_none(),
                    "MWD t={threads} tpt={tpt} w={width}: diverged from oracle at {mismatch:?}"
                );
                let mismatch = norm::first_mismatch(&got_single, &got_mwd, &whole);
                prop_assert!(
                    mismatch.is_none(),
                    "MWD t={threads} tpt={tpt} w={width}: diverged from tpt=1 at {mismatch:?}"
                );
            }};
        }
        // Jacobi6 covers the cross path, Avg27 the corner-reading path.
        if avg { check_op!(Avg27) } else { check_op!(Jacobi6) }
    }
}
