//! End-to-end contract of the plan-cache autotuner: serialization,
//! fingerprint stability, warm-hit economics, stale-entry rejection,
//! and bitwise identity of tuned solves for every operator.

use std::path::PathBuf;

use temporal_blocking::plan::{
    CacheEntry, Json, MachineFingerprint, MethodFamily, PipeParams, Plan, PlanCache, PlanKey,
    PlanMethod,
};
use temporal_blocking::prelude::*;
use temporal_blocking::{solve_tuned_on, solve_tuned_with_on, solve_with, Method, TuneOptions};

fn tmp_cache(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tb-plan-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    std::fs::remove_file(&path).ok();
    path
}

/// Fast, deterministic tuning options: fixed machine parameters (no
/// membench), private cache file, small measurement budget.
fn quick_opts(name: &str) -> TuneOptions {
    TuneOptions {
        cache_path: Some(tmp_cache(name)),
        top_k: 3,
        params: Some(MachineParams::nehalem_ep()),
        ..TuneOptions::default()
    }
}

#[test]
fn plan_json_roundtrips_every_method_variant() {
    let pipe = PipeParams {
        team_size: 3,
        n_teams: 2,
        updates_per_thread: 2,
        block: [64, 16, 16],
        sync: SyncMode::Relaxed {
            dl: 1,
            du: 2,
            dt: 4,
        },
    };
    let methods = vec![
        PlanMethod::Parallel {
            threads: 4,
            streaming_stores: true,
        },
        PlanMethod::Pipelined(pipe.clone()),
        PlanMethod::Compressed(PipeParams {
            sync: SyncMode::Barrier,
            ..pipe
        }),
        PlanMethod::Wavefront { threads: 2 },
        PlanMethod::Diamond {
            threads: 4,
            width: 16,
            threads_per_tile: 2,
        },
    ];
    for method in methods {
        for simd in [false, true] {
            let plan = Plan {
                simd,
                ..Plan::new(method.clone())
            };
            let text = plan.to_json().to_json();
            let back = Plan::from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, plan, "{text}");
        }
    }
}

#[test]
fn fingerprint_is_stable_across_detect_runs() {
    let params = MachineParams::nehalem_ep();
    let a = MachineFingerprint::new(&temporal_blocking::topology::detect::detect(), &params);
    let b = MachineFingerprint::new(&temporal_blocking::topology::detect::detect(), &params);
    assert_eq!(a.as_string(), b.as_string());
}

#[test]
fn second_tuned_solve_is_a_warm_hit_with_zero_measurements() {
    let dims = Dims3::cube(20);
    let initial: Grid3<f64> = grid::init::random(dims, 3);
    let rt = Runtime::with_threads(2);
    let opts = quick_opts("warm-hit.json");

    let (_, _, cold) = solve_tuned_on(&rt, initial.clone(), 4, &opts).unwrap();
    assert!(!cold.cache_hit);
    assert!(cold.measurements > 0, "cold tune must measure");
    let report = cold.report.as_ref().expect("cold tune reports");
    assert!(report.pruning_ratio() <= 0.5, "{}", report.pruning_ratio());

    let (_, _, warm) = solve_tuned_on(&rt, initial, 4, &opts).unwrap();
    assert!(warm.cache_hit, "second solve replays the cache");
    assert_eq!(warm.measurements, 0, "a warm hit costs no measurement");
    assert!(!warm.calibrated, "a warm hit runs no membench");
    assert!(warm.report.is_none());
    assert_eq!(warm.plan, cold.plan, "deterministic replay");
}

#[test]
fn stale_schema_cache_entries_are_rejected() {
    let dims = Dims3::cube(20);
    let initial: Grid3<f64> = grid::init::random(dims, 5);
    let rt = Runtime::with_threads(2);
    let opts = quick_opts("stale-schema.json");
    let path = opts.cache_path.clone().unwrap();

    let (_, _, cold) = solve_tuned_on(&rt, initial.clone(), 4, &opts).unwrap();
    assert!(!cold.cache_hit);
    // Corrupt the schema version on disk: the whole file is distrusted
    // and the next solve re-tunes (then heals the file).
    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::write(&path, text.replace("\"schema\":1", "\"schema\":999")).unwrap();
    let (_, _, again) = solve_tuned_on(&rt, initial.clone(), 4, &opts).unwrap();
    assert!(!again.cache_hit, "stale schema must force a re-tune");
    assert!(again.measurements > 0);
    let (_, _, healed) = solve_tuned_on(&rt, initial, 4, &opts).unwrap();
    assert!(healed.cache_hit, "the re-tune rewrote a valid cache");
}

#[test]
fn wrong_dims_cache_entries_are_rejected() {
    let dims = Dims3::cube(20);
    let params = MachineParams::nehalem_ep();
    let machine = temporal_blocking::topology::detect::detect();
    let key = PlanKey::new::<f64>(
        MachineFingerprint::new(&machine, &params),
        "jacobi6",
        dims,
        4,
    );
    // An entry recorded for other dims under this key (hand-edited
    // file): lookup refuses it.
    let mut cache = PlanCache::in_memory();
    cache.store(
        &key,
        CacheEntry {
            plan: Plan::new(PlanMethod::Wavefront { threads: 2 }),
            dims: [64, 64, 64],
            measured_mlups: 1.0,
            predicted_mlups: 1.0,
        },
    );
    assert!(cache.lookup(&key, dims, 1).is_none());
    // And a plan that no longer validates on the requested dims.
    cache.store(
        &key,
        CacheEntry {
            plan: Plan::new(PlanMethod::Diamond {
                threads: 2,
                width: 2,
                threads_per_tile: 1,
            }),
            dims: [dims.nx, dims.ny, dims.nz],
            measured_mlups: 1.0,
            predicted_mlups: 1.0,
        },
    );
    assert!(cache.lookup(&key, dims, 2).is_none());
}

#[test]
fn tuned_solves_are_bitwise_identical_to_the_oracle_for_every_operator() {
    let dims = Dims3::cube(18);
    let initial: Grid3<f64> = grid::init::random(dims, 11);
    let sweeps = 4;
    let rt = Runtime::with_threads(2);

    fn check<Op: StencilOp<f64>>(
        rt: &Runtime,
        op: &Op,
        initial: &Grid3<f64>,
        sweeps: usize,
        cache: &str,
    ) {
        let dims = initial.dims();
        let (want, _) = solve_with(op, initial.clone(), sweeps, Method::Sequential).unwrap();
        let opts = quick_opts(cache);
        for round in 0..2 {
            let (got, _, tuned) =
                solve_tuned_with_on(rt, op, initial.clone(), sweeps, &opts).unwrap();
            assert_eq!(tuned.cache_hit, round == 1);
            grid::norm::assert_grids_identical(
                &want,
                &got,
                &Region3::whole(dims),
                &format!("tuned {} ({})", op.name(), tuned.plan.label()),
            );
        }
    }
    check(&rt, &Jacobi6, &initial, sweeps, "oracle-jacobi6.json");
    check(
        &rt,
        &Jacobi7::heat(0.12),
        &initial,
        sweeps,
        "oracle-jacobi7.json",
    );
    check(
        &rt,
        &VarCoeff7::banded(dims),
        &initial,
        sweeps,
        "oracle-varcoeff7.json",
    );
    check(&rt, &Avg27, &initial, sweeps, "oracle-avg27.json");
}

#[test]
fn family_restriction_and_force_retune_are_honored() {
    let dims = Dims3::cube(20);
    let initial: Grid3<f64> = grid::init::random(dims, 9);
    let rt = Runtime::with_threads(2);
    let mut opts = quick_opts("family.json");
    opts.families = vec![MethodFamily::Wavefront];

    let (_, _, tuned) = solve_tuned_on(&rt, initial.clone(), 4, &opts).unwrap();
    assert_eq!(tuned.plan.method.family(), MethodFamily::Wavefront);
    // Every measured row stayed inside the requested family (the
    // incumbent included).
    for row in &tuned.report.unwrap().rows {
        assert_eq!(row.plan.method.family(), MethodFamily::Wavefront);
    }

    opts.force_retune = true;
    let (_, _, retuned) = solve_tuned_on(&rt, initial, 4, &opts).unwrap();
    assert!(!retuned.cache_hit, "force_retune bypasses the cache");
    assert!(retuned.measurements > 0);
}

#[test]
fn concurrent_tuned_solves_share_one_cache_entry_and_never_corrupt_the_file() {
    // N tenants tuning the same problem against the same cache file at
    // once (the job server does exactly this from its slices) must end
    // with ONE winner entry and a parseable file — the shared in-process
    // store serializes the load-modify-save cycle that a per-caller
    // `PlanCache` used to race.
    let path = tmp_cache("concurrent.json");
    let dims = Dims3::cube(12);
    let initial: Grid3<f64> = grid::init::random(dims, 5);
    let opts = TuneOptions {
        cache_path: Some(path.clone()),
        top_k: 1,
        params: Some(MachineParams::nehalem_ep()),
        families: vec![MethodFamily::Parallel],
        ..TuneOptions::default()
    };

    let (want, _) = solve_with(&Jacobi6, initial.clone(), 3, Method::Sequential).unwrap();
    let threads: Vec<_> = (0..6)
        .map(|_| {
            let (initial, opts, want) = (initial.clone(), opts.clone(), want.clone());
            std::thread::spawn(move || {
                let rt = Runtime::with_threads(2);
                let (got, _, tuned) = solve_tuned_on(&rt, initial, 3, &opts).unwrap();
                grid::norm::assert_grids_identical(
                    &want,
                    &got,
                    &Region3::whole(dims),
                    "concurrent tuned solve",
                );
                tuned.cache_hit
            })
        })
        .collect();
    let hits = threads
        .into_iter()
        .map(|t| t.join().expect("no tuner thread may panic"))
        .filter(|hit| *hit)
        .count();

    // Exactly one entry made it to disk, and the file parses cleanly.
    let on_disk = PlanCache::load(&path);
    assert_eq!(
        on_disk.len(),
        1,
        "six racing tuners must collapse to one winner entry"
    );
    // Every thread either tuned or hit the single shared entry; a rerun
    // is now warm for everyone.
    let rt = Runtime::with_threads(2);
    let (_, _, tuned) = solve_tuned_on(&rt, initial, 3, &opts).unwrap();
    assert!(tuned.cache_hit, "after the race the cache must be warm");
    assert_eq!(tuned.measurements, 0);
    let _ = hits; // any count 0..=5 is legal; ordering is the OS's call
}
